"""The Sec. VII future-work capabilities: PSNR-target mode, progressive
truncation, multi-resolution decoding."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import decompress_multires, truncate
from repro.datasets import miranda_density, spectral_field
from repro.errors import InvalidArgumentError, UnsupportedModeError
from repro.metrics import psnr
from repro.wavelets import WaveletPlan, forward, inverse_to_level, lowpass_dc_gain


@pytest.fixture(scope="module")
def field():
    return miranda_density((32, 32, 32))


@pytest.fixture(scope="module")
def payload(field):
    t = repro.tolerance_from_idx(field, 18)
    return repro.compress(field, repro.PweMode(t)).payload


class TestPsnrMode:
    @pytest.mark.parametrize("target", [50.0, 90.0, 130.0])
    def test_target_met_without_overshoot(self, field, target):
        res = repro.compress(field, repro.PsnrMode(target))
        recon = repro.decompress(res.payload)
        achieved = psnr(field, recon)
        assert achieved >= target - 0.5
        assert achieved <= target + 12.0

    def test_higher_target_more_bits(self, field):
        a = repro.compress(field, repro.PsnrMode(60.0))
        b = repro.compress(field, repro.PsnrMode(110.0))
        assert b.nbytes > a.nbytes

    def test_no_outlier_pass(self, field):
        """The average-error mode skips outlier location entirely
        (Sec. VII: error estimated in the coefficient domain)."""
        res = repro.compress(field, repro.PsnrMode(80.0))
        assert res.n_outliers == 0
        assert all(r.timings["locate"] == 0 or r.timings["locate"] < 1e-6
                   or r.n_outliers == 0 for r in res.reports)

    def test_invalid_target_rejected(self):
        with pytest.raises(InvalidArgumentError):
            repro.PsnrMode(0.0)
        with pytest.raises(InvalidArgumentError):
            repro.PsnrMode(float("nan"))

    def test_chunked_psnr_mode(self, field):
        res = repro.compress(field, repro.PsnrMode(70.0), chunk_shape=16)
        recon = repro.decompress(res.payload)
        assert psnr(field, recon) >= 69.0


class TestTruncate:
    def test_quality_monotone_in_fraction(self, field, payload):
        prev = np.inf
        for frac in (0.1, 0.4, 0.8, 1.0):
            cut = truncate(payload, frac)
            recon = repro.decompress(cut)
            rmse = float(np.sqrt(np.mean((recon - field) ** 2)))
            assert rmse <= prev * 1.01
            prev = rmse

    def test_size_shrinks(self, field, payload):
        cut = truncate(payload, 0.25)
        assert len(cut) < len(payload) * 0.5

    def test_truncated_container_is_self_contained(self, field, payload):
        cut = truncate(payload, 0.5)
        # a second truncation of the truncated container also works
        again = truncate(cut, 0.5)
        recon = repro.decompress(again)
        assert recon.shape == field.shape
        assert np.all(np.isfinite(recon))

    def test_chunked_containers_supported(self, field):
        t = repro.tolerance_from_idx(field, 12)
        payload = repro.compress(field, repro.PweMode(t), chunk_shape=16).payload
        recon = repro.decompress(truncate(payload, 0.3))
        assert recon.shape == field.shape

    def test_invalid_fraction_rejected(self, payload):
        for frac in (0.0, -0.5, 1.5):
            with pytest.raises(InvalidArgumentError):
                truncate(payload, frac)


class TestMultires:
    def test_half_resolution_matches_block_means(self, field, payload):
        lo = decompress_multires(payload, 1)
        assert lo.shape == (16, 16, 16)
        means = field.reshape(16, 2, 16, 2, 16, 2).mean(axis=(1, 3, 5))
        corr = np.corrcoef(lo.ravel(), means.ravel())[0, 1]
        assert corr > 0.99
        # scale-corrected: same order of magnitude, not a gained-up copy
        assert abs(lo.mean() / means.mean() - 1.0) < 0.1

    def test_each_level_halves_axes(self, payload):
        for level, expected in ((1, 16), (2, 8), (3, 4)):
            lo = decompress_multires(payload, level)
            assert lo.shape == (expected,) * 3

    def test_level_zero_is_full_resolution(self, field, payload):
        full = decompress_multires(payload, 0)
        np.testing.assert_array_equal(full, repro.decompress(payload))

    def test_chunked_container_rejected(self, field):
        t = repro.tolerance_from_idx(field, 10)
        chunked = repro.compress(field, repro.PweMode(t), chunk_shape=16).payload
        with pytest.raises(UnsupportedModeError):
            decompress_multires(chunked, 1)

    def test_excessive_level_rejected(self, payload):
        with pytest.raises(InvalidArgumentError):
            decompress_multires(payload, 99)
        with pytest.raises(InvalidArgumentError):
            decompress_multires(payload, -1)


class TestInverseToLevel:
    def test_level_zero_equals_inverse(self, rng):
        x = rng.standard_normal((24, 24))
        c, plan = forward(x)
        np.testing.assert_allclose(inverse_to_level(c, plan, 0), x, atol=1e-9)

    def test_constant_field_survives_coarsening(self):
        x = np.full((32, 32), 5.0)
        c, plan = forward(x)
        lo = inverse_to_level(c, plan, 2)
        np.testing.assert_allclose(lo, 5.0, rtol=1e-6)

    def test_dc_gain_cached_and_positive(self):
        for w in ("cdf97", "cdf53", "haar"):
            g = lowpass_dc_gain(w)
            assert g > 1.0
            assert lowpass_dc_gain(w) == g  # cache hit

    def test_smooth_signal_coarse_view(self, rng):
        g = np.linspace(0, 1, 64)
        x = np.sin(2 * np.pi * g)
        c, plan = forward(x)
        lo = inverse_to_level(c, plan, 1)
        assert lo.shape == (32,)
        np.testing.assert_allclose(lo, np.sin(2 * np.pi * np.linspace(0, 1, 32)), atol=0.15)

    def test_shape_mismatch_rejected(self, rng):
        x = rng.standard_normal((16, 16))
        c, plan = forward(x)
        with pytest.raises(InvalidArgumentError):
            inverse_to_level(c[:8], plan, 1)


class TestProgressiveHardening:
    """Satellite of the store PR: progressive payload parsing runs behind
    the decode_guard/checked_shape trust boundary — malformed payloads
    surface as ReproError subclasses, never raw struct/numpy errors."""

    def test_truncate_rejects_garbage_payload(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            truncate(b"not a container at all", 0.5)

    def test_truncate_rejects_corrupted_chunk_stream(self, payload):
        from repro.core.container import build_container, parse_container
        from repro.errors import StreamFormatError

        p = parse_container(payload)
        bad = build_container(
            p.rank, p.dtype, p.mode_code, p.shape, p.chunks,
            [b"\x00\x01\x02\x03" * 10],
        )
        with pytest.raises(StreamFormatError):
            truncate(bad, 0.5)

    def test_multires_rejects_corrupted_chunk_stream(self, payload):
        from repro.core.container import build_container, parse_container
        from repro.errors import StreamFormatError

        p = parse_container(payload)
        bad = build_container(
            p.rank, p.dtype, p.mode_code, p.shape, p.chunks,
            [b"\xff" * 64],
        )
        with pytest.raises(StreamFormatError):
            decompress_multires(bad, 1)

    def test_split_chunk_stream_validates_sections(self, payload):
        from repro import lossless
        from repro.bitstream import HEADER_SIZE, ChunkParams
        from repro.core.container import parse_container
        from repro.core.progressive import split_chunk_stream
        from repro.errors import StreamFormatError

        raw = lossless.decompress(parse_container(payload).streams[0])
        header, params, speck, outliers = split_chunk_stream(raw)
        assert len(speck) == header.speck_nbytes
        assert len(outliers) == params.outlier_nbytes
        # truncating the body below the section table must be caught
        with pytest.raises(StreamFormatError):
            split_chunk_stream(raw[: HEADER_SIZE + ChunkParams.SIZE + 1])

    def test_truncate_chunk_stream_roundtrip(self, payload):
        from repro import lossless
        from repro.core.pipeline import decompress_chunk
        from repro.core.container import parse_container
        from repro.core.progressive import truncate_chunk_stream

        parsed = parse_container(payload)
        raw = lossless.decompress(parsed.streams[0])
        cut = truncate_chunk_stream(raw, 0.25)
        assert len(cut) < len(raw)
        out = decompress_chunk(cut, rank=3, expected_shape=parsed.shape)
        assert out.shape == parsed.shape
        assert np.isfinite(out).all()

    def test_truncate_chunk_stream_invalid_fraction(self, payload):
        from repro import lossless
        from repro.core.container import parse_container
        from repro.core.progressive import truncate_chunk_stream

        raw = lossless.decompress(parse_container(payload).streams[0])
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(InvalidArgumentError):
                truncate_chunk_stream(raw, bad)
