"""Cross-method properties of the lossless backend."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lossless


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=800), st.sampled_from(["stored", "rle", "huffman", "rle+huffman"]))
def test_every_method_round_trips_property(data, method):
    assert lossless.decompress(lossless.compress(data, method=method)) == data


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=800))
def test_auto_is_min_of_candidates(data):
    """`auto` output is never larger than any specifically requested
    method's output."""
    auto = len(lossless.compress(data, method="auto"))
    for method in ("stored", "rle", "huffman", "rle+huffman"):
        assert auto <= len(lossless.compress(data, method=method))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_methods_agree_on_content(seed):
    """All methods decode the same payload content, whatever their size."""
    g = np.random.default_rng(seed)
    data = bytes(np.repeat(g.integers(0, 4, 60), g.integers(1, 30, 60)).astype(np.uint8))
    decoded = {
        method: lossless.decompress(lossless.compress(data, method=method))
        for method in ("stored", "rle", "huffman", "lz77", "ac")
    }
    assert all(v == data for v in decoded.values())


class TestBackendSizeAccounting:
    def test_tag_overhead_is_one_byte(self):
        data = b"x" * 100
        stored = lossless.compress(data, method="stored")
        assert len(stored) == len(data) + 1

    def test_compressible_payload_shrinks_through_sperr_pipeline(self):
        """End to end: a structured chunk stream benefits from the pass."""
        import repro
        from repro.datasets import spectral_field

        f = spectral_field((16, 16), slope=4.0, seed=3)
        t = repro.tolerance_from_idx(f, 6)  # loose: sparse SPECK stream
        auto = repro.compress(f, repro.PweMode(t), lossless_method="auto")
        stored = repro.compress(f, repro.PweMode(t), lossless_method="stored")
        assert auto.nbytes <= stored.nbytes
