"""Bit-level I/O: BitWriter/BitReader pairing, headers, parameter blocks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream import (
    HEADER_SIZE,
    BitReader,
    BitWriter,
    ChunkHeader,
    ChunkParams,
)
from repro.errors import InvalidArgumentError, StreamFormatError


class TestBitWriter:
    def test_empty_writer(self):
        w = BitWriter()
        assert w.nbits == 0
        assert w.nbytes == 0
        assert w.getvalue() == b""

    def test_single_bits(self):
        w = BitWriter()
        for b in (1, 0, 1, 1, 0, 0, 0, 1):
            w.write_bit(b)
        assert w.nbits == 8
        assert w.getvalue() == bytes([0b10110001])

    def test_batched_bits_match_single_bits(self):
        bits = np.array([1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1], dtype=bool)
        w1 = BitWriter()
        w1.write_bits(bits)
        w2 = BitWriter()
        for b in bits:
            w2.write_bit(bool(b))
        assert w1.getvalue() == w2.getvalue()
        assert w1.nbits == w2.nbits == 11

    def test_tail_byte_zero_padded(self):
        w = BitWriter()
        w.write_bits(np.array([1, 1, 1], dtype=bool))
        assert w.getvalue() == bytes([0b11100000])

    def test_write_uint_msb_first(self):
        w = BitWriter()
        w.write_uint(0b1011, 4)
        w.write_uint(0, 4)
        assert w.getvalue() == bytes([0b10110000])

    def test_write_uint_zero_width(self):
        w = BitWriter()
        w.write_uint(0, 0)
        assert w.nbits == 0

    def test_write_uint_overflow_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidArgumentError):
            w.write_uint(16, 4)

    def test_negative_uint_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidArgumentError):
            w.write_uint(-1, 4)

    def test_truncation_via_max_bits(self):
        w = BitWriter()
        w.write_bits(np.ones(16, dtype=bool))
        assert w.getvalue(max_bits=4) == bytes([0b11110000])

    def test_non_1d_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidArgumentError):
            w.write_bits(np.ones((2, 2), dtype=bool))


class TestBitReader:
    def test_round_trip_bits(self):
        w = BitWriter()
        pattern = np.array([1, 0, 0, 1, 1, 1, 0, 1, 0, 1], dtype=bool)
        w.write_bits(pattern)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        out = r.read_bits(10)
        assert np.array_equal(out, pattern)
        assert r.exhausted

    def test_read_beyond_end_returns_short(self):
        r = BitReader(bytes([0xFF]), nbits=3)
        got = r.read_bits(10)
        assert got.size == 3
        assert r.exhausted

    def test_read_bit_raises_past_end(self):
        r = BitReader(b"", nbits=0)
        with pytest.raises(StreamFormatError):
            r.read_bit()

    def test_read_bits_exact_raises(self):
        r = BitReader(bytes([0xF0]), nbits=4)
        with pytest.raises(StreamFormatError):
            r.read_bits_exact(5)

    def test_read_uint(self):
        w = BitWriter()
        w.write_uint(42, 13)
        r = BitReader(w.getvalue(), nbits=13)
        assert r.read_uint(13) == 42

    def test_declared_nbits_longer_than_buffer(self):
        with pytest.raises(StreamFormatError):
            BitReader(bytes([0x00]), nbits=9)

    def test_seek(self):
        w = BitWriter()
        w.write_uint(0b1010, 4)
        r = BitReader(w.getvalue(), nbits=4)
        r.read_bits(4)
        r.seek(0)
        assert r.read_uint(4) == 0b1010
        with pytest.raises(InvalidArgumentError):
            r.seek(5)

    def test_negative_read_rejected(self):
        r = BitReader(bytes([0xAA]))
        with pytest.raises(InvalidArgumentError):
            r.read_bits(-1)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.booleans(), max_size=300))
def test_bit_round_trip_property(bits):
    arr = np.asarray(bits, dtype=bool)
    w = BitWriter()
    w.write_bits(arr)
    r = BitReader(w.getvalue(), nbits=w.nbits)
    assert np.array_equal(r.read_bits(len(bits)), arr)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**40 - 1), st.integers(min_value=40, max_value=64))
def test_uint_round_trip_property(value, width):
    w = BitWriter()
    w.write_uint(value, width)
    r = BitReader(w.getvalue(), nbits=width)
    assert r.read_uint(width) == value


class TestChunkHeader:
    def test_fixed_size_is_twenty_bytes(self):
        """Sec. V-A: the header is exactly 20 bytes."""
        h = ChunkHeader(shape=(64, 64, 64), speck_nbytes=12345)
        assert HEADER_SIZE == 20
        assert len(h.pack()) == 20

    def test_round_trip(self):
        h = ChunkHeader(
            shape=(100, 1, 7),
            speck_nbytes=999,
            is_double=True,
            pwe_mode=False,
            has_outliers=True,
            lossless=True,
        )
        assert ChunkHeader.unpack(h.pack()) == h

    def test_bad_magic_rejected(self):
        data = b"XX" + b"\x00" * 18
        with pytest.raises(StreamFormatError):
            ChunkHeader.unpack(data)

    def test_short_buffer_rejected(self):
        with pytest.raises(StreamFormatError):
            ChunkHeader.unpack(b"SP\x01")

    def test_bad_version_rejected(self):
        h = ChunkHeader(shape=(1, 1, 1), speck_nbytes=0).pack()
        corrupted = h[:2] + bytes([99]) + h[3:]
        with pytest.raises(StreamFormatError):
            ChunkHeader.unpack(corrupted)


class TestChunkParams:
    def test_round_trip(self):
        p = ChunkParams(
            q=1.5e-7,
            tolerance=1e-7,
            speck_nbits=88,
            outlier_nbits=13,
            outlier_nbytes=2,
            wavelet="cdf53",
            levels=4,
        )
        assert ChunkParams.unpack(p.pack()) == p

    def test_auto_levels_round_trip(self):
        p = ChunkParams(
            q=1.0, tolerance=0.5, speck_nbits=0, outlier_nbits=0, outlier_nbytes=0
        )
        out = ChunkParams.unpack(p.pack())
        assert out.levels is None
        assert out.wavelet == "cdf97"

    def test_short_buffer_rejected(self):
        with pytest.raises(StreamFormatError):
            ChunkParams.unpack(b"\x00" * 4)
