"""SZ3-like baseline: predictor, quantizer, bin codec, full compressor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.szlike import (
    QUANT_RADIUS,
    SzLikeCompressor,
    coarse_indices,
    decode_bins,
    dequantize_codes,
    encode_bins,
    interpolation_schedule,
    predict,
    quantize_residuals,
)
from repro.core.modes import PweMode, SizeMode
from repro.errors import InvalidArgumentError, UnsupportedModeError


class TestSchedule:
    def test_covers_every_point_once(self):
        shape = (13, 9)
        seen = np.zeros(shape, dtype=int)
        ci = coarse_indices(shape)
        seen[np.ix_(*ci)] += 1
        for step in interpolation_schedule(shape):
            seen[np.ix_(*step.grids)] += 1
        assert np.all(seen == 1)

    @pytest.mark.parametrize("shape", [(7,), (16,), (8, 12), (9, 5, 7)])
    def test_coverage_many_shapes(self, shape):
        seen = np.zeros(shape, dtype=int)
        seen[np.ix_(*coarse_indices(shape))] += 1
        for step in interpolation_schedule(shape):
            seen[np.ix_(*step.grids)] += 1
        assert np.all(seen == 1)

    def test_neighbors_always_known(self):
        """Every prediction step may only read already-reconstructed points."""
        shape = (11, 6)
        known = np.zeros(shape, dtype=bool)
        known[np.ix_(*coarse_indices(shape))] = True
        marker = np.where(known, 1.0, np.nan)
        for step in interpolation_schedule(shape):
            pred = predict(marker, step, kind="cubic")
            assert np.all(np.isfinite(pred)), f"unknown neighbor at {step}"
            marker[np.ix_(*step.grids)] = 1.0

    def test_deterministic(self):
        s1 = interpolation_schedule((10, 10))
        s2 = interpolation_schedule((10, 10))
        assert len(s1) == len(s2)
        for a, b in zip(s1, s2):
            assert a.level_stride == b.level_stride and a.axis == b.axis


class TestPredictor:
    def test_linear_exact_on_linear_signal(self):
        x = np.linspace(0.0, 10.0, 17)
        recon = x.copy()
        for step in interpolation_schedule(x.shape):
            pred = predict(recon, step, kind="linear")
            interior = step.grids[0] + step.stride <= x.size - 1
            np.testing.assert_allclose(pred[interior], x[step.grids[0]][interior], atol=1e-12)

    def test_cubic_beats_linear_on_smooth_curve(self):
        g = np.linspace(0, 1, 65)
        x = np.sin(2 * np.pi * g)
        err = {}
        for kind in ("linear", "cubic"):
            total = 0.0
            for step in interpolation_schedule(x.shape):
                if step.level_stride > 4:
                    continue
                pred = predict(x, step, kind=kind)
                total += float(np.sum((pred - x[step.grids[0]]) ** 2))
            err[kind] = total
        assert err["cubic"] < err["linear"]

    def test_unknown_kind_rejected(self):
        step = interpolation_schedule((8,))[0]
        with pytest.raises(InvalidArgumentError):
            predict(np.zeros(8), step, kind="spline9")


class TestBinCodec:
    def test_quantize_error_bound(self, rng):
        t = 0.01
        r = rng.standard_normal(1000) * 10 * t
        codes, escape = quantize_residuals(r, t)
        rec = dequantize_codes(codes, t)
        assert np.abs(rec[~escape] - r[~escape]).max() <= t * (1 + 1e-9)

    def test_escape_on_overflow(self):
        t = 1e-6
        r = np.array([0.0, QUANT_RADIUS * 2 * t * 2])
        codes, escape = quantize_residuals(r, t)
        assert escape.tolist() == [False, True]
        assert codes[1] == 0

    def test_bins_round_trip(self, rng):
        codes = rng.integers(-100, 100, size=5000)
        escape = rng.random(5000) < 0.01
        codes[escape] = 0
        payload = encode_bins(codes, escape)
        out_codes, out_escape = decode_bins(payload)
        assert np.array_equal(out_codes, codes)
        assert np.array_equal(out_escape, escape)

    def test_bins_compress_peaked_distribution(self, rng):
        codes = np.clip(np.rint(rng.standard_normal(20000) * 2), -100, 100).astype(np.int64)
        payload = encode_bins(codes)
        assert len(payload) < 20000 * 2  # far below 16-bit raw storage

    def test_empty_bins(self):
        payload = encode_bins(np.zeros(0, dtype=np.int64))
        codes, escape = decode_bins(payload)
        assert codes.size == 0 and escape.size == 0

    def test_out_of_range_code_rejected(self):
        with pytest.raises(InvalidArgumentError):
            encode_bins(np.array([QUANT_RADIUS]))


class TestSzLikeCompressor:
    @pytest.mark.parametrize("idx", [8, 16, 24])
    def test_error_bound_strict(self, idx, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**idx
        c = SzLikeCompressor()
        recon = c.decompress(c.compress(smooth_field, PweMode(t)))
        assert np.abs(recon - smooth_field).max() <= t

    def test_error_bound_on_rough_data(self, rough_field):
        t = (rough_field.max() - rough_field.min()) / 2**20
        c = SzLikeCompressor()
        recon = c.decompress(c.compress(rough_field, PweMode(t)))
        assert np.abs(recon - rough_field).max() <= t

    @pytest.mark.parametrize("shape", [(50,), (17, 23), (9, 8, 11)])
    def test_all_ranks(self, shape, rng):
        data = rng.standard_normal(shape).cumsum(axis=-1)
        t = (data.max() - data.min()) / 2**12
        c = SzLikeCompressor()
        recon = c.decompress(c.compress(data, PweMode(t)))
        assert recon.shape == shape
        assert np.abs(recon - data).max() <= t

    def test_linear_interpolation_variant(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**12
        c = SzLikeCompressor(interpolation="linear")
        recon = c.decompress(c.compress(smooth_field, PweMode(t)))
        assert np.abs(recon - smooth_field).max() <= t

    def test_smooth_data_compresses_well(self, rng):
        g = np.linspace(0, 1, 48)
        data = np.sin(2 * np.pi * g)[:, None] * np.cos(2 * np.pi * g)[None, :]
        t = (data.max() - data.min()) / 2**10
        payload = SzLikeCompressor().compress(data, PweMode(t))
        assert 8 * len(payload) / data.size < 4.0  # well under 4 bpp

    def test_size_mode_unsupported(self, smooth_field):
        with pytest.raises(UnsupportedModeError):
            SzLikeCompressor().compress(smooth_field, SizeMode(bpp=2.0))

    def test_nan_rejected(self):
        data = np.zeros((8, 8))
        data[2, 2] = np.inf
        with pytest.raises(InvalidArgumentError):
            SzLikeCompressor().compress(data, PweMode(0.1))

    def test_invalid_interpolation_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SzLikeCompressor(interpolation="quintic")

    def test_constant_field(self):
        data = np.full((12, 12), 7.0)
        c = SzLikeCompressor()
        recon = c.decompress(c.compress(data, PweMode(1e-9)))
        assert np.abs(recon - data).max() <= 1e-9
