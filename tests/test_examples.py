"""Example scripts: importable, documented, and runnable at toy scale.

Full example runs take minutes; here we import each module (catching
syntax/import rot) and exercise the cheapest one end-to-end.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert "quickstart.py" in EXAMPLES
        assert len(EXAMPLES) >= 6  # the deliverable floor, with headroom

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_importable_with_main(self, name):
        module = _load(name)
        assert hasattr(module, "main"), f"{name} lacks a main() entry point"
        assert callable(module.main)
        assert module.__doc__, f"{name} lacks a module docstring"
        assert "Run:" in module.__doc__, f"{name} docstring lacks run instructions"

    def test_progressive_streaming_runs(self, capsys):
        """The cheapest example end-to-end (seconds, not minutes)."""
        module = _load("progressive_streaming.py")
        module.main()
        out = capsys.readouterr().out
        assert "100%" in out
        assert "bpp" in out
