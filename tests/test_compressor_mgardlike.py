"""MGARD-like baseline: hierarchy substrate and error-bounded codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import MgardLikeCompressor
from repro.compressors.mgardlike import (
    coefficient_levels,
    decompose,
    level_schedule,
    reconstruct,
)
from repro.core.modes import PweMode, SizeMode
from repro.errors import InvalidArgumentError, UnsupportedModeError


class TestHierarchy:
    @pytest.mark.parametrize("shape", [(16,), (17,), (12, 20), (9, 9), (8, 10, 6)])
    def test_perfect_reconstruction(self, shape, rng):
        x = rng.standard_normal(shape)
        coeffs, levels = decompose(x)
        np.testing.assert_allclose(reconstruct(coeffs, levels), x, atol=1e-10)

    def test_linear_signals_have_zero_details(self):
        """Piecewise-linear basis: a linear ramp has no detail content."""
        x = np.linspace(0.0, 5.0, 33)
        coeffs, levels = decompose(x)
        n_coarse = 33
        for _ in range(levels):
            n_coarse = (n_coarse + 1) // 2
        details = coeffs[n_coarse:]
        # interior details vanish; boundary fallback leaves small residue
        assert np.abs(details).max() < 0.5
        assert np.median(np.abs(details)) < 1e-10

    def test_level_schedule(self):
        assert level_schedule((64,)) >= 3
        assert level_schedule((4,)) == 0
        assert level_schedule((64, 1, 1)) >= 3

    def test_coefficient_levels_partition(self):
        shape = (16, 16)
        levels = level_schedule(shape)
        lm = coefficient_levels(shape, levels)
        assert lm.min() == 0 and lm.max() == levels
        # finest level holds the majority of coefficients
        assert np.sum(lm == 0) > lm.size / 2

    def test_4d_rejected(self, rng):
        with pytest.raises(InvalidArgumentError):
            decompose(rng.standard_normal((2, 2, 2, 2)))


class TestMgardLikeCompressor:
    @pytest.mark.parametrize("idx", [8, 14, 20])
    def test_error_bound(self, idx, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**idx
        c = MgardLikeCompressor()
        recon = c.decompress(c.compress(smooth_field, PweMode(t)))
        assert np.abs(recon - smooth_field).max() <= t

    def test_error_bound_rough(self, rough_field):
        t = (rough_field.max() - rough_field.min()) / 2**16
        c = MgardLikeCompressor()
        recon = c.decompress(c.compress(rough_field, PweMode(t)))
        assert np.abs(recon - rough_field).max() <= t

    @pytest.mark.parametrize("shape", [(50,), (15, 25), (8, 12, 10)])
    def test_all_ranks(self, shape, rng):
        data = rng.standard_normal(shape).cumsum(axis=-1)
        t = (data.max() - data.min()) / 2**10
        c = MgardLikeCompressor()
        recon = c.decompress(c.compress(data, PweMode(t)))
        assert recon.shape == shape
        assert np.abs(recon - data).max() <= t

    def test_looser_tolerance_fewer_bits(self, smooth_field):
        c = MgardLikeCompressor()
        rng_ = smooth_field.max() - smooth_field.min()
        loose = c.compress(smooth_field, PweMode(rng_ / 2**8))
        tight = c.compress(smooth_field, PweMode(rng_ / 2**20))
        assert len(loose) < len(tight)

    def test_size_mode_unsupported(self, smooth_field):
        with pytest.raises(UnsupportedModeError):
            MgardLikeCompressor().compress(smooth_field, SizeMode(bpp=2.0))

    def test_constant_field(self):
        data = np.full((16, 16), 1.5)
        c = MgardLikeCompressor()
        recon = c.decompress(c.compress(data, PweMode(1e-9)))
        assert np.abs(recon - data).max() <= 1e-9

    def test_nan_rejected(self):
        with pytest.raises(InvalidArgumentError):
            MgardLikeCompressor().compress(np.full((4, 4), np.nan), PweMode(0.1))
