"""TTHRESH-like baseline: HOSVD substrate and PSNR-targeted codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import PsnrMode, TthreshLikeCompressor, psnr_target_for_idx
from repro.compressors.tthreshlike import hosvd, mode_product, tucker_reconstruct
from repro.core.modes import PweMode
from repro.errors import InvalidArgumentError, UnsupportedModeError
from repro.metrics import GAIN_DB_PER_BIT, psnr


class TestHosvd:
    def test_exact_reconstruction(self, rng):
        x = rng.standard_normal((8, 10, 6))
        core, factors = hosvd(x)
        np.testing.assert_allclose(tucker_reconstruct(core, factors), x, atol=1e-10)

    def test_factors_orthogonal(self, rng):
        x = rng.standard_normal((8, 8, 8))
        _, factors = hosvd(x)
        for u in factors:
            np.testing.assert_allclose(u.T @ u, np.eye(u.shape[1]), atol=1e-10)

    def test_energy_preserved(self, rng):
        """Orthogonality => core carries exactly the input energy, the
        property the PSNR calibration relies on."""
        x = rng.standard_normal((6, 9, 5))
        core, _ = hosvd(x)
        assert np.sum(core**2) == pytest.approx(np.sum(x**2))

    def test_core_energy_compacted(self):
        g = np.linspace(0, 1, 16)
        x = np.outer(np.sin(g), np.cos(g))[:, :, None] * g[None, None, :]
        core, _ = hosvd(x)
        mags = np.sort(np.abs(core.ravel()))[::-1]
        assert np.sum(mags[:8] ** 2) > 0.999 * np.sum(mags**2)

    def test_2d_matches_svd(self, rng):
        x = rng.standard_normal((12, 7))
        core, factors = hosvd(x)
        s = np.linalg.svd(x, compute_uv=False)
        core_norms = np.sqrt(np.sum(core**2, axis=1))
        np.testing.assert_allclose(np.sort(core_norms)[::-1][: s.size], s, atol=1e-8)

    def test_mode_product_shapes(self, rng):
        x = rng.standard_normal((4, 5, 6))
        m = rng.standard_normal((3, 5))
        out = mode_product(x, m, 1)
        assert out.shape == (4, 3, 6)

    def test_4d_rejected(self, rng):
        with pytest.raises(InvalidArgumentError):
            hosvd(rng.standard_normal((2, 2, 2, 2)))


class TestTthreshLikeCompressor:
    @pytest.mark.parametrize("target", [40.0, 70.0, 100.0])
    def test_psnr_target_met(self, target, smooth_field):
        c = TthreshLikeCompressor()
        recon = c.decompress(c.compress(smooth_field, PsnrMode(target)))
        achieved = psnr(smooth_field, recon)
        assert achieved >= target - 1.0  # calibration tolerance
        assert achieved <= target + 25.0  # not wildly overshooting

    def test_higher_target_more_bits(self, smooth_field):
        c = TthreshLikeCompressor()
        p1 = c.compress(smooth_field, PsnrMode(40.0))
        p2 = c.compress(smooth_field, PsnrMode(100.0))
        assert len(p2) > len(p1)

    def test_idx_to_psnr_mapping(self):
        """Sec. VI-C: PSNR = (20 log10 2) * idx; each idx halves RMSE."""
        assert psnr_target_for_idx(20) == pytest.approx(120.41, abs=0.01)
        assert psnr_target_for_idx(40) == pytest.approx(240.82, abs=0.01)
        assert psnr_target_for_idx(1) == pytest.approx(GAIN_DB_PER_BIT)
        with pytest.raises(InvalidArgumentError):
            psnr_target_for_idx(0)

    def test_pwe_mode_unsupported(self, smooth_field):
        """The paper: TTHRESH has no error-bounded mode (excluded from Fig. 9)."""
        with pytest.raises(UnsupportedModeError):
            TthreshLikeCompressor().compress(smooth_field, PweMode(0.1))

    @pytest.mark.parametrize("shape", [(40,), (16, 20)])
    def test_lower_ranks(self, shape, rng):
        data = rng.standard_normal(shape).cumsum(axis=-1)
        c = TthreshLikeCompressor()
        recon = c.decompress(c.compress(data, PsnrMode(60.0)))
        assert recon.shape == shape
        assert psnr(data, recon) >= 59.0

    def test_low_rank_data_compresses_extremely_well(self, rng):
        """Tucker shines on (near) low-rank data — TTHRESH's home turf.
        The core of a rank-2 tensor is nearly empty, so the payload is
        dominated by the (fixed-cost) factor matrices and is far smaller
        than for full-rank noise at the same target."""
        u = rng.standard_normal((24, 2))
        v = rng.standard_normal((24, 2))
        w = rng.standard_normal((24, 2))
        data = np.einsum("ir,jr,kr->ijk", u, v, w)
        noise = rng.standard_normal(data.shape)
        c = TthreshLikeCompressor()
        low = c.compress(data, PsnrMode(80.0))
        full = c.compress(noise, PsnrMode(80.0))
        assert len(low) < len(full) / 2
        factor_bytes = 3 * 24 * 24 * 4  # float32 factors dominate
        assert len(low) < factor_bytes * 1.5

    def test_constant_field(self):
        data = np.full((8, 8, 8), 5.0)
        c = TthreshLikeCompressor()
        recon = c.decompress(c.compress(data, PsnrMode(60.0)))
        assert np.abs(recon - data).max() < 1.0

    def test_nan_rejected(self):
        with pytest.raises(InvalidArgumentError):
            TthreshLikeCompressor().compress(np.full((4, 4), np.nan), PsnrMode(50.0))
