"""Adaptive binary arithmetic coder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lossless
from repro.errors import StreamFormatError
from repro.lossless import arith
from repro.lossless.arith import AdaptiveBitModel, decode_bits, encode_bits


class TestModel:
    def test_counts_update(self):
        m = AdaptiveBitModel()
        assert (m.c0, m.c1) == (1, 1)
        m.update(0)
        m.update(0)
        m.update(1)
        assert (m.c0, m.c1) == (3, 2)

    def test_saturation_halving(self):
        m = AdaptiveBitModel()
        for _ in range(70000):
            m.update(0)
        assert m.c0 + m.c1 < 1 << 16
        assert m.c0 > m.c1  # skew preserved across halvings


class TestBitsApi:
    def test_round_trip_with_custom_context(self, rng):
        bits = (rng.random(3000) < 0.2).astype(np.uint8)
        ctx = lambda i, prev: prev  # noqa: E731
        payload = encode_bits(bits, 2, ctx)
        out = decode_bits(payload, bits.size, 2, ctx)
        assert np.array_equal(out, bits)

    def test_empty_bits(self):
        ctx = lambda i, prev: 0  # noqa: E731
        payload = encode_bits(np.zeros(0, dtype=np.uint8), 1, ctx)
        assert decode_bits(payload, 0, 1, ctx).size == 0

    def test_single_bit(self):
        ctx = lambda i, prev: 0  # noqa: E731
        for b in (0, 1):
            payload = encode_bits(np.array([b], dtype=np.uint8), 1, ctx)
            assert decode_bits(payload, 1, 1, ctx).tolist() == [b]


class TestByteApi:
    def test_round_trip_random(self, rng):
        data = bytes(rng.integers(0, 256, 1500).astype(np.uint8))
        assert arith.decode(arith.encode(data)) == data

    def test_skewed_data_compresses_strongly(self, rng):
        data = bytes((rng.random(5000) < 0.02).astype(np.uint8))
        enc = arith.encode(data)
        assert len(enc) < len(data) / 5

    def test_adaptivity_beats_huffman_on_binary_stream(self, rng):
        """On a 0/1 byte stream Huffman is stuck at >= 1 bit/byte; the
        adaptive AC goes below it."""
        from repro.lossless import huffman

        data_arr = (rng.random(8000) < 0.05).astype(np.uint8)
        code = huffman.build_code(np.bincount(data_arr, minlength=256))
        _, huff_bits = huffman.encode(data_arr, code)
        ac_bytes = len(arith.encode(data_arr.tobytes())) - 8
        assert ac_bytes * 8 < huff_bits

    def test_empty(self):
        assert arith.decode(arith.encode(b"")) == b""

    def test_truncated_rejected(self):
        with pytest.raises(StreamFormatError):
            arith.decode(b"\x01")

    def test_backend_integration(self, rng):
        data = bytes((rng.random(2000) < 0.1).astype(np.uint8))
        payload = lossless.compress(data, method="ac")
        assert lossless.decompress(payload) == data
        # auto considers AC for small inputs and must round-trip
        assert lossless.decompress(lossless.compress(data, method="auto")) == data


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=400))
def test_arith_round_trip_property(data):
    assert arith.decode(arith.encode(data)) == data
