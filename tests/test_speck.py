"""SPECK coder: geometry, pyramid, codec round trips, embedded property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgumentError
from repro.speck import (
    Geometry,
    MaxPyramid,
    decode,
    decode_coefficients,
    encode,
    encode_coefficients,
)


class TestGeometry:
    def test_power_of_two_cube(self):
        g = Geometry((8, 8, 8))
        assert g.padded_shape == (8, 8, 8)
        assert g.max_depth == 3
        assert g.grids[0] == (1, 1, 1)
        assert g.grids[3] == (8, 8, 8)

    def test_non_power_of_two_padding(self):
        g = Geometry((5, 9))
        assert g.padded_shape == (8, 16)
        assert g.max_depth == 4

    def test_degenerate_axes(self):
        g = Geometry((16, 1, 1))
        assert g.padded_shape == (16, 1, 1)
        assert g.max_depth == 4

    def test_children_cover_parent_exactly(self):
        g = Geometry((8, 8))
        root = np.zeros(1, dtype=np.int64)
        kids = g.children(0, root)
        assert kids.size == 4  # quadtree split in 2-D
        grand = g.children(1, kids)
        assert grand.size == 16
        # at max depth all pixels are enumerated exactly once
        idx = root
        for d in range(g.max_depth):
            idx = g.children(d, idx)
        assert sorted(idx.tolist()) == list(range(64))

    def test_children_binary_split_1d(self):
        g = Geometry((16,))
        kids = g.children(0, np.zeros(1, dtype=np.int64))
        assert kids.size == 2

    def test_children_octree_3d(self):
        g = Geometry((8, 8, 8))
        kids = g.children(0, np.zeros(1, dtype=np.int64))
        assert kids.size == 8

    def test_pixel_mapping_skips_padding(self):
        g = Geometry((3,))
        flats = g.pixel_flat_to_array_flat(np.arange(4))
        assert flats.tolist() == [0, 1, 2, -1]

    def test_invalid_shapes_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Geometry((0,))
        with pytest.raises(InvalidArgumentError):
            Geometry((2, 2, 2, 2))


class TestMaxPyramid:
    def test_block_maxima(self):
        mags = np.arange(16, dtype=np.uint64).reshape(4, 4)
        g = Geometry((4, 4))
        p = MaxPyramid(g, mags)
        assert p.global_max == 15
        # depth-1 grid is 2x2; each block max is its bottom-right corner
        level1 = p.levels[1].reshape(2, 2)
        assert level1.tolist() == [[5, 7], [13, 15]]

    def test_padding_is_zero(self):
        mags = np.full((3,), 9, dtype=np.uint64)
        g = Geometry((3,))
        p = MaxPyramid(g, mags)
        assert p.levels[g.max_depth].tolist() == [9, 9, 9, 0]

    def test_shape_mismatch_rejected(self):
        g = Geometry((4, 4))
        with pytest.raises(InvalidArgumentError):
            MaxPyramid(g, np.zeros((4, 5), dtype=np.uint64))


class TestCodecIntegers:
    @pytest.mark.parametrize(
        "shape", [(1,), (2,), (17,), (8, 8), (5, 13), (4, 4, 4), (7, 3, 9)]
    )
    def test_exact_round_trip(self, shape, rng):
        mags = rng.integers(0, 1000, size=shape).astype(np.uint64)
        neg = rng.random(shape) < 0.5
        stream, nbits, stats = encode(mags, neg)
        rec, rneg = decode(stream, shape, nbits=nbits)
        coded = mags > 0
        # full decode reconstructs m + 0.5 for every coded magnitude
        np.testing.assert_allclose(rec[coded], mags[coded] + 0.5)
        assert np.all(rec[~coded] == 0)
        assert np.array_equal(rneg[coded], neg[coded])

    def test_all_zero_input(self):
        mags = np.zeros((8, 8), dtype=np.uint64)
        stream, nbits, _ = encode(mags, np.zeros((8, 8), dtype=bool))
        assert nbits == 8  # just the nmax header
        rec, _ = decode(stream, (8, 8), nbits=nbits)
        assert np.all(rec == 0)

    def test_single_nonzero_pixel(self):
        mags = np.zeros((16, 16), dtype=np.uint64)
        mags[7, 11] = 5
        neg = np.zeros((16, 16), dtype=bool)
        neg[7, 11] = True
        stream, nbits, _ = encode(mags, neg)
        rec, rneg = decode(stream, (16, 16), nbits=nbits)
        assert rec[7, 11] == 5.5
        assert rneg[7, 11]
        assert np.count_nonzero(rec) == 1

    def test_stats_accounting(self, rng):
        mags = rng.integers(0, 64, size=(16, 16)).astype(np.uint64)
        stream, nbits, stats = encode(mags, np.zeros((16, 16), dtype=bool))
        # nmax header (8 bits) plus the per-pass bits must equal the stream
        assert 8 + stats.total_bits() == nbits
        assert stats.planes == sorted(stats.planes, reverse=True)

    def test_size_budget_respected(self, rng):
        mags = rng.integers(0, 2**20, size=(32, 32)).astype(np.uint64)
        stream, nbits, _ = encode(mags, np.zeros((32, 32), dtype=bool), max_bits=2000)
        assert nbits <= 2000
        assert len(stream) <= 250
        rec, _ = decode(stream, (32, 32), nbits=nbits)  # must not raise
        assert rec.shape == (32, 32)


class TestCodecCoefficients:
    def test_error_bounded_by_q(self, smooth_field):
        q = 1e-3
        stream, nbits, _, recon = encode_coefficients(smooth_field, q)
        dec = decode_coefficients(stream, smooth_field.shape, q, nbits=nbits)
        np.testing.assert_allclose(dec, recon, atol=1e-12)
        assert np.abs(dec - smooth_field).max() <= q

    def test_encoder_reconstruction_matches_decoder_exactly(self, rough_field):
        """The SPERR pipeline locates outliers against the encoder-side
        reconstruction; it must be bit-identical to a full decode."""
        q = 0.05
        stream, nbits, _, recon = encode_coefficients(rough_field, q)
        dec = decode_coefficients(stream, rough_field.shape, q, nbits=nbits)
        assert np.array_equal(dec, recon)

    def test_embedded_prefix_improves_monotonically(self, smooth_field):
        """Any stream prefix decodes; longer prefixes are at least as good
        (the embedded property, Sec. VII)."""
        q = 1e-4
        stream, nbits, _, _ = encode_coefficients(smooth_field, q)
        prev_rmse = np.inf
        for frac in (0.05, 0.2, 0.5, 1.0):
            nb = max(8, int(nbits * frac))
            dec = decode_coefficients(
                stream[: (nb + 7) // 8], smooth_field.shape, q, nbits=nb
            )
            rmse = float(np.sqrt(np.mean((dec - smooth_field) ** 2)))
            assert rmse <= prev_rmse * 1.001
            prev_rmse = rmse

    def test_smaller_q_means_more_bits_and_less_error(self, smooth_field):
        """Sec. III-C: q steers the quality/size trade-off."""
        _, bits_coarse, _, rec_coarse = encode_coefficients(smooth_field, 1e-2)
        _, bits_fine, _, rec_fine = encode_coefficients(smooth_field, 1e-4)
        assert bits_fine > bits_coarse
        err_coarse = np.abs(rec_coarse - smooth_field).max()
        err_fine = np.abs(rec_fine - smooth_field).max()
        assert err_fine < err_coarse

    def test_truncated_header_rejected(self):
        with pytest.raises(InvalidArgumentError):
            decode_coefficients(b"", (4, 4), 1.0, nbits=0)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_speck_1d_round_trip_property(n, seed):
    g = np.random.default_rng(seed)
    mags = g.integers(0, 500, size=n).astype(np.uint64)
    neg = g.random(n) < 0.5
    stream, nbits, _ = encode(mags, neg)
    rec, rneg = decode(stream, (n,), nbits=nbits)
    coded = mags > 0
    np.testing.assert_allclose(rec[coded], mags[coded] + 0.5)
    assert np.array_equal(rneg[coded], neg[coded])
