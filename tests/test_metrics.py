"""Metrics: error measures, accuracy gain (Eq. 2), SSIM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidArgumentError
from repro.metrics import (
    GAIN_DB_PER_BIT,
    accuracy_gain,
    accuracy_gain_from_stats,
    bitrate_bpp,
    max_pwe,
    mse,
    psnr,
    rmse,
    snr_db,
    ssim,
)


class TestErrorMetrics:
    def test_identical_arrays(self, rng):
        x = rng.standard_normal(100)
        assert mse(x, x) == 0.0
        assert rmse(x, x) == 0.0
        assert max_pwe(x, x) == 0.0
        assert psnr(x, x) == np.inf
        assert snr_db(x, x) == np.inf

    def test_known_values(self):
        a = np.array([0.0, 0.0, 0.0, 0.0])
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert mse(a, b) == 1.0
        assert rmse(a, b) == 1.0
        assert max_pwe(a, b) == 1.0

    def test_psnr_uses_range(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        # rmse = 1/sqrt(2), range = 10
        expected = 20 * np.log10(10.0 / (1.0 / np.sqrt(2.0)))
        assert psnr(a, b) == pytest.approx(expected)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidArgumentError):
            rmse(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgumentError):
            mse(np.zeros(0), np.zeros(0))

    def test_bitrate(self):
        assert bitrate_bpp(nbytes=100, npoints=100) == 8.0
        with pytest.raises(InvalidArgumentError):
            bitrate_bpp(1, 0)


class TestAccuracyGain:
    def test_equation_2(self):
        """gain = log2(sigma / E) - R."""
        assert accuracy_gain_from_stats(sigma=8.0, error_rms=1.0, bpp=2.0) == pytest.approx(1.0)
        assert accuracy_gain_from_stats(sigma=1.0, error_rms=1.0, bpp=0.5) == pytest.approx(-0.5)

    def test_snr_relation(self, rng):
        """gain = SNR / (20 log10 2) - R (Sec. V-B)."""
        x = rng.standard_normal(4096)
        noise = 0.01 * rng.standard_normal(4096)
        y = x + noise
        bpp = 3.0
        gain = accuracy_gain(x, y, bpp)
        snr = snr_db(x, y)
        assert gain == pytest.approx(snr / GAIN_DB_PER_BIT - bpp, rel=1e-9)

    def test_one_extra_bit_halves_error_is_flat(self):
        """On the random-bits plateau, +1 bit halving E keeps gain flat."""
        g1 = accuracy_gain_from_stats(1.0, 0.01, 5.0)
        g2 = accuracy_gain_from_stats(1.0, 0.005, 6.0)
        assert g1 == pytest.approx(g2)

    def test_degenerate_cases(self):
        assert accuracy_gain_from_stats(0.0, 1.0, 1.0) == -np.inf
        assert accuracy_gain_from_stats(1.0, 0.0, 1.0) == np.inf


class TestSsim:
    def test_identical_is_one(self, rng):
        x = rng.standard_normal((32, 32))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self, rng):
        x = rng.standard_normal((32, 32)).cumsum(axis=0).cumsum(axis=1)
        mild = x + 0.01 * x.std() * rng.standard_normal(x.shape)
        harsh = x + 0.5 * x.std() * rng.standard_normal(x.shape)
        assert 0.9 < ssim(x, mild) <= 1.0
        assert ssim(x, harsh) < ssim(x, mild)

    def test_3d_supported(self, rng):
        x = rng.standard_normal((12, 12, 12))
        assert ssim(x, x, window=5) == pytest.approx(1.0)

    def test_constant_arrays(self):
        x = np.full((16, 16), 3.0)
        assert ssim(x, x) == 1.0
        assert ssim(x, x + 1.0) == 0.0

    def test_window_too_large_rejected(self, rng):
        with pytest.raises(InvalidArgumentError):
            ssim(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)), window=7)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ssim(np.zeros((8, 8)), np.zeros((8, 9)))
