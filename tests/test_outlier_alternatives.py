"""Universal codes and the Sec. II alternative outlier coders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream import BitReader, BitWriter
from repro.errors import InvalidArgumentError, StreamFormatError
from repro.lossless.universal import (
    delta_decode,
    delta_encode,
    gamma_decode,
    gamma_encode,
    unzigzag,
    zigzag,
)
from repro.outlier import bitmap_decode, bitmap_encode, csr_decode, csr_encode


class TestZigzag:
    def test_known_mapping(self):
        vals = np.array([0, -1, 1, -2, 2, -3])
        assert zigzag(vals).tolist() == [1, 2, 3, 4, 5, 6]

    def test_round_trip(self, rng):
        vals = rng.integers(-(2**40), 2**40, size=500)
        assert np.array_equal(unzigzag(zigzag(vals)), vals)


class TestEliasCodes:
    def test_gamma_known_lengths(self):
        """gamma(1)=1 bit, gamma(2..3)=3 bits, gamma(4..7)=5 bits."""
        for value, bits in ((1, 1), (2, 3), (3, 3), (4, 5), (7, 5), (8, 7)):
            w = BitWriter()
            gamma_encode(np.asarray([value]), w)
            assert w.nbits == bits, value

    def test_gamma_round_trip(self, rng):
        vals = rng.integers(1, 10**9, size=300)
        w = BitWriter()
        gamma_encode(vals, w)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        assert np.array_equal(gamma_decode(r, vals.size), vals)

    def test_delta_round_trip(self, rng):
        vals = rng.integers(1, 10**12, size=300)
        w = BitWriter()
        delta_encode(vals, w)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        assert np.array_equal(delta_decode(r, vals.size), vals)

    def test_delta_shorter_than_gamma_for_large_values(self, rng):
        vals = rng.integers(2**20, 2**30, size=200)
        wg, wd = BitWriter(), BitWriter()
        gamma_encode(vals, wg)
        delta_encode(vals, wd)
        assert wd.nbits < wg.nbits

    def test_small_values_round_trip(self):
        vals = np.arange(1, 40)
        for enc, dec in ((gamma_encode, gamma_decode), (delta_encode, delta_decode)):
            w = BitWriter()
            enc(vals, w)
            r = BitReader(w.getvalue(), nbits=w.nbits)
            assert np.array_equal(dec(r, vals.size), vals)

    def test_nonpositive_rejected(self):
        w = BitWriter()
        with pytest.raises(InvalidArgumentError):
            gamma_encode(np.asarray([0]), w)
        with pytest.raises(InvalidArgumentError):
            delta_encode(np.asarray([-3]), w)

    def test_exhausted_stream_rejected(self):
        r = BitReader(b"", nbits=0)
        with pytest.raises(StreamFormatError):
            gamma_decode(r, 1)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=2**50), min_size=1, max_size=60))
def test_elias_round_trip_property(values):
    vals = np.asarray(values, dtype=np.int64)
    for enc, dec in ((gamma_encode, gamma_decode), (delta_encode, delta_decode)):
        w = BitWriter()
        enc(vals, w)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        assert np.array_equal(dec(r, vals.size), vals)


def _outlier_case(seed: int, n: int = 4096, k: int = 150, t: float = 0.25):
    g = np.random.default_rng(seed)
    pos = np.sort(g.choice(n, size=k, replace=False))
    corr = t * (1.0 + 3.0 * g.random(k)) * np.where(g.random(k) < 0.5, -1.0, 1.0)
    return pos, corr, n, t


class TestAlternativeCoders:
    @pytest.mark.parametrize("coder", ["csr", "bitmap"])
    def test_contract_positions_exact_corrections_half_t(self, coder):
        pos, corr, n, t = _outlier_case(5)
        enc = csr_encode if coder == "csr" else bitmap_encode
        dec = csr_decode if coder == "csr" else bitmap_decode
        dpos, dcorr, dt = dec(enc(pos, corr, n, t))
        assert dt == t
        assert np.array_equal(np.sort(dpos), pos)
        order = np.argsort(dpos)
        assert np.abs(dcorr[order] - corr).max() <= t / 2 + 1e-12

    def test_csr_cost_is_position_dominated(self):
        """CSR pays ~log2(n) bits per position — the naive storage the
        paper criticizes."""
        pos, corr, n, t = _outlier_case(6, n=2**20, k=100)
        payload = csr_encode(pos, corr, n, t)
        bits_per = 8 * len(payload) / 100
        assert bits_per >= 20  # 20-bit positions alone

    def test_bitmap_beats_csr_at_moderate_density(self):
        pos, corr, n, t = _outlier_case(7, n=8192, k=250)
        csr = len(csr_encode(pos, corr, n, t))
        bmp = len(bitmap_encode(pos, corr, n, t))
        assert bmp < csr

    def test_truncated_payloads_rejected(self):
        pos, corr, n, t = _outlier_case(8)
        for enc, dec in ((csr_encode, csr_decode), (bitmap_encode, bitmap_decode)):
            payload = enc(pos, corr, n, t)
            with pytest.raises(StreamFormatError):
                dec(payload[:10])
