"""The paper's core claim, as executable properties.

SPERR's defining guarantee (Sec. IV): for any input and any positive
tolerance t, the reconstruction never deviates from the original by more
than t at any point.  These hypothesis tests throw arbitrary fields,
shapes, tolerances, q-factors, and chunkings at the full pipeline.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core.modes import PweMode, SizeMode

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _field(seed: int, shape: tuple[int, ...], scale: float, roughness: float) -> np.ndarray:
    g = np.random.default_rng(seed)
    base = g.standard_normal(shape)
    if roughness < 1.0 and all(n >= 4 for n in shape):
        from scipy.ndimage import gaussian_filter

        base = gaussian_filter(base, sigma=1.0 / max(roughness, 0.1))
    return scale * base


@_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    shape=st.sampled_from([(64,), (129,), (16, 24), (13, 17), (8, 8, 8), (6, 10, 7)]),
    idx=st.integers(min_value=1, max_value=28),
    scale=st.sampled_from([1e-6, 1.0, 1e6]),
    roughness=st.sampled_from([0.2, 1.0]),
)
def test_pwe_guarantee_holds(seed, shape, idx, scale, roughness):
    data = _field(seed, shape, scale, roughness)
    rng = float(data.max() - data.min())
    if rng == 0.0:
        return
    t = rng / 2**idx
    result = repro.compress(data, PweMode(t))
    recon = repro.decompress(result.payload)
    assert np.abs(recon - data).max() <= t, "PWE guarantee violated"


@_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    q_factor=st.floats(min_value=1.0, max_value=3.0),
)
def test_pwe_guarantee_holds_for_any_q_factor(seed, q_factor):
    """Sec. IV-D: the q/t balance shifts storage, never the guarantee."""
    data = _field(seed, (12, 12, 12), 1.0, 1.0)
    t = float(data.max() - data.min()) / 2**16
    result = repro.compress(data, PweMode(t, q_factor=q_factor))
    recon = repro.decompress(result.payload)
    assert np.abs(recon - data).max() <= t


@_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    chunk=st.integers(min_value=5, max_value=20),
)
def test_pwe_guarantee_holds_under_chunking(seed, chunk):
    data = _field(seed, (24, 24), 1.0, 0.2)
    rng = float(data.max() - data.min())
    if rng == 0.0:
        return
    t = rng / 2**14
    result = repro.compress(data, PweMode(t), chunk_shape=chunk)
    recon = repro.decompress(result.payload)
    assert np.abs(recon - data).max() <= t


@_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    bpp=st.floats(min_value=0.5, max_value=12.0),
)
def test_size_mode_respects_budget(seed, bpp):
    """Size-bounded termination: output never exceeds the requested rate
    (plus the fixed container header amortized over the chunk)."""
    data = _field(seed, (16, 16, 16), 1.0, 1.0)
    result = repro.compress(data, SizeMode(bpp=bpp), lossless_method="stored")
    container_overhead_bits = 8.0 * 120 / data.size
    assert result.bpp <= bpp + container_overhead_bits + 0.05
    recon = repro.decompress(result.payload)
    assert recon.shape == data.shape
    assert np.all(np.isfinite(recon))


def test_decompress_is_deterministic(smooth_field):
    t = repro.tolerance_from_idx(smooth_field, 18)
    payload = repro.compress(smooth_field, PweMode(t)).payload
    a = repro.decompress(payload)
    b = repro.decompress(payload)
    np.testing.assert_array_equal(a, b)


def test_compress_is_deterministic(smooth_field):
    t = repro.tolerance_from_idx(smooth_field, 18)
    p1 = repro.compress(smooth_field, PweMode(t)).payload
    p2 = repro.compress(smooth_field, PweMode(t)).payload
    assert p1 == p2
