"""Adaptive per-chunk codec dispatch: proxies, routing, tags, store.

The fast tier's correctness story is layered:

* :func:`repro.core.adaptive.chunk_proxies` must read smoothness and
  value-repetition from a bounded sample;
* :func:`~repro.core.adaptive.choose_codecs` must route per policy and
  reject modes szx cannot bound;
* the container v4 chunk table must round-trip the decisions so decode
  is self-describing, with ``quality`` payloads byte-identical to the
  pre-adaptive format;
* the store must persist tags in its index and serve windowed, coarse,
  and budget reads from mixed-codec frames.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import PweMode, SizeMode, compress, decompress
from repro.core.adaptive import (
    CODEC_SPERR,
    CODEC_STORED,
    CODEC_SZX,
    _LOW_UNIQUE_DENSITY,
    _STORED_WIDTH,
    _SZX_WIDTH,
    choose_codecs,
    chunk_proxies,
    decode_stored_chunk,
    encode_stored_chunk,
)
from repro.core.container import parse_container
from repro.errors import InvalidArgumentError, ReproError, StreamFormatError


def _smooth(shape=(16, 16), seed=0):
    axes = np.ix_(*[np.linspace(0.0, np.pi, s) for s in shape])
    out = np.ones(shape)
    for a in axes:
        out = out * np.sin(a + 0.2)
    return out


def _noisy(shape=(16, 16), seed=1):
    return np.random.default_rng(seed).normal(size=shape)


class TestProxies:
    def test_smooth_chunk_reads_narrow(self):
        data = _smooth((32, 32))
        width, density = chunk_proxies(data, 1e-3)
        assert width <= _SZX_WIDTH

    def test_noise_reads_wide_at_tight_bound(self):
        data = _noisy((32, 32))
        width, _ = chunk_proxies(data, 1e-7)
        assert width > _SZX_WIDTH

    def test_repeated_values_read_low_density(self):
        data = np.tile(np.array([1.0, 2.0]), 4096)
        _, density = chunk_proxies(data, 1e-3)
        assert density <= _LOW_UNIQUE_DENSITY

    def test_constant_chunk(self):
        width, density = chunk_proxies(np.full(500, 3.0), 1e-6)
        assert width == 0
        assert density <= _LOW_UNIQUE_DENSITY

    def test_bad_tolerance_rejected(self):
        with pytest.raises(InvalidArgumentError):
            chunk_proxies(np.ones(8), 0.0)
        with pytest.raises(InvalidArgumentError):
            chunk_proxies(np.ones(8), float("nan"))

    def test_empty_chunk_rejected(self):
        with pytest.raises(InvalidArgumentError):
            chunk_proxies(np.empty(0), 1e-3)

    def test_stored_width_pins_szx_plane_cap(self):
        # _STORED_WIDTH restates szxlike's MAX_WIDTH (core cannot import
        # repro.compressors at module scope); this pins them together.
        from repro.compressors.szxlike.blocks import MAX_WIDTH

        assert _STORED_WIDTH == MAX_WIDTH + 10


class TestChooseCodecs:
    def test_quality_routes_everything_to_sperr(self):
        tags = choose_codecs([_noisy(), _smooth()], SizeMode(2.0), "quality")
        assert (tags == CODEC_SPERR).all()

    def test_fast_routes_to_szx(self):
        tags = choose_codecs([_smooth(), _noisy()], PweMode(1e-2), "fast")
        assert (tags == CODEC_SZX).all()

    def test_adaptive_splits_by_smoothness(self):
        smooth = _smooth((32, 32))
        noisy = _noisy((32, 32))
        tags = choose_codecs([smooth, noisy], PweMode(1e-4), "adaptive")
        assert tags[0] == CODEC_SZX
        assert tags[1] in (CODEC_SPERR, CODEC_STORED)
        assert tags[1] != CODEC_SZX

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidArgumentError, match="codec"):
            choose_codecs([_smooth()], PweMode(1e-3), "turbo")

    @pytest.mark.parametrize("policy", ["fast", "adaptive"])
    def test_non_pwe_mode_rejected(self, policy):
        with pytest.raises(InvalidArgumentError, match="point-wise"):
            choose_codecs([_smooth()], SizeMode(2.0), policy)

    def test_routing_counters_recorded(self):
        from repro import obs

        with obs.trace("routing") as tracer:
            compress(_smooth((16, 16)), PweMode(1e-3), codec="fast")
        counters = tracer.report().counters
        assert sum(
            v for k, v in counters.items() if k.startswith("adaptive.route.")
        ) >= 1


class TestStoredChunks:
    def test_roundtrip_exact(self):
        data = _noisy((7, 5, 3))
        out = decode_stored_chunk(encode_stored_chunk(data))
        np.testing.assert_array_equal(out, data)

    def test_expected_shape_mismatch_rejected(self):
        stream = encode_stored_chunk(np.ones((4, 4)))
        with pytest.raises(StreamFormatError, match="table says"):
            decode_stored_chunk(stream, expected_shape=(4, 5))

    def test_truncation_rejected(self):
        stream = encode_stored_chunk(np.ones(100))
        with pytest.raises(ReproError):
            decode_stored_chunk(stream[:-8])

    def test_wrong_magic_rejected(self):
        with pytest.raises(StreamFormatError):
            decode_stored_chunk(b"NOPE" + bytes(32))


class TestContainerTags:
    def test_quality_payload_matches_default_bytes(self):
        # The adaptive machinery must be invisible when unused: the
        # default codec produces the exact pre-adaptive payload.
        data = _smooth((16, 16))
        mode = PweMode(1e-3)
        assert (
            compress(data, mode, codec="quality").payload
            == compress(data, mode).payload
        )

    def test_fast_payload_carries_tags(self):
        payload = compress(_smooth((16, 16)), PweMode(1e-3), codec="fast").payload
        parsed = parse_container(payload)
        assert parsed.codec_tags is not None
        assert set(parsed.codec_tags) == {CODEC_SZX}

    def test_adaptive_mixed_tags_roundtrip_bit_exactly(self):
        data = _smooth((32, 32))
        rough = np.array(data)
        rough[16:] += np.random.default_rng(3).normal(size=rough[16:].shape)
        t = 1e-5 * float(rough.max() - rough.min())
        result = compress(rough, PweMode(t), chunk_shape=16, codec="adaptive")
        parsed = parse_container(result.payload)
        assert parsed.codec_tags is not None
        assert len(set(parsed.codec_tags)) > 1, "expected a mixed chunk table"
        out = decompress(result.payload)
        assert float(np.abs(out - rough).max()) <= t
        # decode must be deterministic and self-describing
        np.testing.assert_array_equal(out, decompress(result.payload))

    @pytest.mark.parametrize("mode", [SizeMode(2.0), repro.PsnrMode(50.0)])
    @pytest.mark.parametrize("policy", ["fast", "adaptive"])
    def test_rate_modes_rejected_for_fast_policies(self, mode, policy):
        with pytest.raises(InvalidArgumentError):
            compress(_smooth((8, 8)), mode, codec=policy)

    def test_unknown_codec_rejected(self):
        with pytest.raises(InvalidArgumentError):
            compress(_smooth((8, 8)), PweMode(1e-3), codec="best")

    def test_reports_name_routed_codec(self):
        result = compress(_smooth((16, 16)), PweMode(1e-3), codec="fast")
        parsed = parse_container(result.payload)
        assert parsed.codec_tags == (CODEC_SZX,) * len(parsed.streams)


class TestStoreTags:
    @pytest.fixture()
    def mixed_store(self, tmp_path):
        from repro.store import write_store

        data = _smooth((32, 32, 32))
        rough = np.array(data)
        rough[16:] += np.random.default_rng(9).normal(size=rough[16:].shape)
        t = 1e-5 * float(rough.max() - rough.min())
        write_store(
            tmp_path / "s", rough, PweMode(t), chunk_shape=16, codec="adaptive"
        )
        return tmp_path / "s", rough, t

    def test_index_records_mixed_tags(self, mixed_store):
        from repro.store import open_store

        path, rough, t = mixed_store
        arr = open_store(path)
        tags = {
            arr.index.codec_tag(f, c)
            for f in range(len(arr.index.frame_codecs) or 1)
            for c in range(len(arr.index.frame_codecs[f]) if arr.index.frame_codecs else 0)
        }
        assert len(tags) > 1

    def test_full_and_window_reads_honor_bound(self, mixed_store):
        from repro.store import open_store

        path, rough, t = mixed_store
        arr = open_store(path)
        full = np.asarray(arr.read())
        assert float(np.abs(full - rough).max()) <= t
        window = (slice(8, 24),) * 3
        np.testing.assert_array_equal(
            np.asarray(arr.read_window(window)), full[window]
        )

    def test_coarse_preview_of_mixed_frames(self, mixed_store):
        from repro.store import open_store

        path, rough, t = mixed_store
        arr = open_store(path)
        coarse = np.asarray(arr.read(level=1))
        assert coarse.shape == (16, 16, 16)
        assert np.isfinite(coarse).all()

    def test_info_reports_codec_counts(self, mixed_store):
        from repro.store import open_store

        path, _, _ = mixed_store
        info = open_store(path).info()
        counts = info.get("codec_counts")
        assert counts is not None
        assert counts["szx"] > 0
        assert counts["sperr"] > 0
        assert sum(counts.values()) == 8
