"""Input-fault injection: NaN/Inf damage must never produce garbage.

The byte-level fuzz campaign (test_robustness.py) attacks payloads;
this one attacks *inputs*.  Every codec is fed arrays damaged by the
:data:`~repro.testing.faults.ARRAY_FAULT_OPERATORS` and must either
reject with a :class:`~repro.errors.ReproError` or return an array
whose dtype, shape, and non-finite pattern match the damaged input
exactly — no unflagged NaNs, no leaked fill values.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.compressors import ALL_COMPRESSORS, MaskedCompressor
from repro.compressors.base import PsnrMode, psnr_target_for_idx
from repro.core.modes import PweMode
from repro.datasets import list_scenarios
from repro.testing.faults import (
    ARRAY_FAULT_OPERATORS,
    fuzz_codec_inputs,
    inject_nonfinite,
)

TOL = 1e-3


def _roundtrip(name: str):
    codec = ALL_COMPRESSORS[name]()
    if name != "sperr":
        codec = MaskedCompressor(codec)
    mode = (
        PsnrMode(psnr_target_for_idx(16)) if name == "tthresh-like" else PweMode(TOL)
    )

    def rt(data: np.ndarray) -> np.ndarray:
        return codec.decompress(codec.compress(data, mode))

    return rt


class TestOperators:
    def test_registry_names(self):
        assert set(ARRAY_FAULT_OPERATORS) == {
            "scattered_nan",
            "scattered_inf",
            "nan_block",
            "all_nan",
        }

    def test_inject_is_seeded_and_pure(self):
        base = np.random.default_rng(0).normal(size=(10, 10))
        a, ops_a = inject_nonfinite(base, 42)
        b, ops_b = inject_nonfinite(base, 42)
        assert ops_a == ops_b
        np.testing.assert_array_equal(a, b)
        assert np.isfinite(base).all()  # input untouched

    def test_each_operator_damages(self):
        base = np.random.default_rng(1).normal(size=(12, 12))
        rng = np.random.default_rng(2)
        for name, op in ARRAY_FAULT_OPERATORS.items():
            out = op(base, rng)
            assert not np.isfinite(out).all(), name
            assert out.shape == base.shape


class TestFuzzMatrix:
    @pytest.mark.parametrize("name", sorted(ALL_COMPRESSORS))
    def test_smoke_campaign(self, name):
        base = np.random.default_rng(9).normal(size=(16, 16)).cumsum(axis=1)
        report = fuzz_codec_inputs(_roundtrip(name), base, n=8, seed=0)
        assert report.ok, [v.detail for v in report.violations]
        assert report.n_decoded + report.n_rejected == report.n_runs

    @pytest.mark.parametrize("name", sorted(ALL_COMPRESSORS))
    def test_masked_scenarios_roundtrip(self, name):
        # The declarative masked scenarios double as fuzz bases: damage
        # them further and the contract must still hold.
        rt = _roundtrip(name)
        for scenario in list_scenarios(tags={"masked"}, smoke_only=True):
            data = scenario.build()
            if data.ndim > 3:
                data = data[0]
            report = fuzz_codec_inputs(rt, data, n=3, seed=7)
            assert report.ok, (
                scenario.name,
                [v.detail for v in report.violations],
            )

    @pytest.mark.fuzz
    @pytest.mark.skipif(
        os.environ.get("REPRO_FUZZ_DEEP") != "1",
        reason="deep fuzz is opt-in: set REPRO_FUZZ_DEEP=1 and run -m fuzz",
    )
    @pytest.mark.parametrize("name", sorted(ALL_COMPRESSORS))
    def test_deep_campaign(self, name):
        """Stacked-operator campaign; REPRO_FUZZ_N scales the run."""
        n = int(os.environ.get("REPRO_FUZZ_N", "100"))
        base = np.random.default_rng(3).normal(size=(20, 20, 4)).cumsum(axis=0)
        report = fuzz_codec_inputs(_roundtrip(name), base, n=n, n_ops=2, seed=0)
        assert report.ok, [v.detail for v in report.violations]
