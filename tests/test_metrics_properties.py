"""Property tests for the metric identities used throughout evaluation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    GAIN_DB_PER_BIT,
    accuracy_gain_from_stats,
    max_pwe,
    mse,
    psnr,
    rmse,
    ssim,
)

_ARRAYS = st.integers(min_value=0, max_value=2**31 - 1)


def _pair(seed: int, n: int = 64, noise: float = 0.1):
    g = np.random.default_rng(seed)
    a = g.standard_normal(n).cumsum()
    b = a + noise * g.standard_normal(n)
    return a, b


@settings(max_examples=40, deadline=None)
@given(_ARRAYS)
def test_rmse_is_l2_norm_scaled(seed):
    a, b = _pair(seed)
    assert rmse(a, b) == np.sqrt(mse(a, b))
    assert rmse(a, b) <= max_pwe(a, b) + 1e-12  # RMS never exceeds max


@settings(max_examples=40, deadline=None)
@given(_ARRAYS, st.floats(min_value=0.01, max_value=10.0))
def test_error_metrics_scale_invariance(seed, scale):
    """Scaling both arrays scales absolute errors and leaves PSNR fixed."""
    a, b = _pair(seed)
    assert rmse(scale * a, scale * b) == pytest_approx(scale * rmse(a, b))
    assert abs(psnr(scale * a, scale * b) - psnr(a, b)) < 1e-8


def pytest_approx(x, rel=1e-9):
    import pytest

    return pytest.approx(x, rel=rel)


@settings(max_examples=40, deadline=None)
@given(_ARRAYS)
def test_psnr_shift_invariance(seed):
    a, b = _pair(seed)
    assert abs(psnr(a + 100.0, b + 100.0) - psnr(a, b)) < 1e-8


@settings(max_examples=40, deadline=None)
@given(_ARRAYS, st.floats(min_value=0.1, max_value=20.0))
def test_gain_bit_exchange_identity(seed, bpp):
    """Eq. 2: halving E while paying exactly one more bit leaves gain flat."""
    a, b = _pair(seed)
    e = rmse(a, b)
    sigma = float(a.std())
    g1 = accuracy_gain_from_stats(sigma, e, bpp)
    g2 = accuracy_gain_from_stats(sigma, e / 2.0, bpp + 1.0)
    assert abs(g1 - g2) < 1e-9


@settings(max_examples=20, deadline=None)
@given(_ARRAYS)
def test_gain_db_relation(seed):
    """gain = SNR/(20 log10 2) - R (Sec. V-B), for any reconstruction."""
    from repro.metrics import snr_db

    a, b = _pair(seed)
    bpp = 3.7
    sigma = float(a.std())
    gain = accuracy_gain_from_stats(sigma, rmse(a, b), bpp)
    assert abs(gain - (snr_db(a, b) / GAIN_DB_PER_BIT - bpp)) < 1e-8


@settings(max_examples=20, deadline=None)
@given(_ARRAYS, st.floats(min_value=0.0, max_value=0.5))
def test_ssim_bounded_and_ordered(seed, noise):
    g = np.random.default_rng(seed)
    a = g.standard_normal((24, 24)).cumsum(axis=0)
    b = a + noise * a.std() * g.standard_normal(a.shape)
    s = ssim(a, b)
    assert -1.0 <= s <= 1.0 + 1e-12
    if noise == 0.0:
        assert s == pytest_approx(1.0)
