"""Cross-validation: batched production SPECK vs the canonical reference.

The production codec batches each depth level for vectorization; that
only reorders bits inside deterministic windows.  Three consequences are
enforced here:

1. identical stream lengths (batching adds/removes no bits),
2. bit-identical full-stream reconstructions,
3. the reference round-trips on its own.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.speck import decode, encode
from repro.speck.reference import reference_decode, reference_encode


def _random_case(seed: int, shape: tuple[int, ...], density: float = 0.5):
    g = np.random.default_rng(seed)
    mags = g.integers(0, 300, size=shape).astype(np.uint64)
    mags[g.random(shape) > density] = 0
    neg = g.random(shape) < 0.5
    return mags, neg


class TestReferenceRoundTrip:
    @pytest.mark.parametrize("shape", [(8,), (13,), (8, 8), (5, 9), (4, 4, 4), (3, 6, 5)])
    def test_reference_round_trip(self, shape):
        mags, neg = _random_case(7, shape)
        stream, nbits = reference_encode(mags, neg)
        rec, rneg = reference_decode(stream, shape, nbits)
        coded = mags > 0
        np.testing.assert_allclose(rec[coded], mags[coded] + 0.5)
        assert np.all(rec[~coded] == 0)
        assert np.array_equal(rneg[coded], neg[coded])

    def test_all_zero(self):
        mags = np.zeros((4, 4), dtype=np.uint64)
        stream, nbits = reference_encode(mags, np.zeros((4, 4), dtype=bool))
        assert nbits == 8
        rec, _ = reference_decode(stream, (4, 4), nbits)
        assert np.all(rec == 0)


class TestBatchedMatchesReference:
    @pytest.mark.parametrize(
        "shape,seed",
        [((16,), 0), ((9,), 1), ((8, 8), 2), ((7, 5), 3), ((4, 4, 4), 4), ((6, 3, 5), 5)],
    )
    def test_identical_bit_counts(self, shape, seed):
        """Batching reorders bits; it must never change the count."""
        mags, neg = _random_case(seed, shape)
        _, nbits_batched, _ = encode(mags, neg)
        _, nbits_reference = reference_encode(mags, neg)
        assert nbits_batched == nbits_reference

    @pytest.mark.parametrize(
        "shape,seed", [((16,), 10), ((8, 8), 11), ((4, 4, 4), 12)]
    )
    def test_identical_full_reconstructions(self, shape, seed):
        mags, neg = _random_case(seed, shape)
        b_stream, b_nbits, _ = encode(mags, neg)
        r_stream, r_nbits = reference_encode(mags, neg)
        b_rec, b_neg = decode(b_stream, shape, nbits=b_nbits)
        r_rec, r_neg = reference_decode(r_stream, shape, r_nbits)
        np.testing.assert_array_equal(b_rec, r_rec)
        coded = b_rec > 0
        assert np.array_equal(b_neg[coded], r_neg[coded])

    def test_sparse_and_dense_extremes(self):
        for density in (0.02, 0.98):
            mags, neg = _random_case(42, (8, 8), density)
            _, nb, _ = encode(mags, neg)
            _, nr = reference_encode(mags, neg)
            assert nb == nr


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from([(12,), (4, 6), (3, 3, 3)]),
)
def test_bit_count_equivalence_property(seed, shape):
    mags, neg = _random_case(seed, shape, density=0.4)
    _, nbits_batched, _ = encode(mags, neg)
    _, nbits_reference = reference_encode(mags, neg)
    assert nbits_batched == nbits_reference
