"""Mathematical properties of the wavelet substrate beyond round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.wavelets import (
    FILTERS,
    WaveletPlan,
    forward,
    forward_97,
    inverse,
    lowpass_dc_gain,
)


class TestLinearity:
    def test_transform_is_linear(self, rng):
        """DWT(a·x + b·y) == a·DWT(x) + b·DWT(y)."""
        x = rng.standard_normal((20, 20))
        y = rng.standard_normal((20, 20))
        cx, plan = forward(x)
        cy, _ = forward(y)
        combined, _ = forward(2.5 * x - 0.75 * y)
        np.testing.assert_allclose(combined, 2.5 * cx - 0.75 * cy, atol=1e-9)

    def test_zero_maps_to_zero(self):
        c, _ = forward(np.zeros((16, 16)))
        assert np.all(c == 0.0)

    def test_scaling_commutes(self, rng):
        x = rng.standard_normal(128)
        c1 = forward_97(1e6 * x)
        c2 = 1e6 * forward_97(x)
        np.testing.assert_allclose(c1, c2, rtol=1e-12)


class TestDetailAnnihilation:
    def test_cdf97_kills_cubic_polynomials(self):
        """CDF 9/7 has four analysis vanishing moments: the high-pass
        output of any cubic polynomial vanishes away from the boundary."""
        t = np.linspace(-1.0, 1.0, 256)
        poly = 1.0 + 2.0 * t - 0.5 * t**2 + 0.3 * t**3
        c = forward_97(poly)
        interior_detail = c[132:252]  # high-pass half, boundary clipped
        assert np.abs(interior_detail).max() < 1e-10

    def test_cdf53_kills_linears(self):
        from repro.wavelets import forward_53

        t = np.linspace(0.0, 1.0, 128)
        line = 3.0 * t + 1.0
        c = forward_53(line)
        interior_detail = c[66:126]
        assert np.abs(interior_detail).max() < 1e-10

    def test_haar_kills_constants(self):
        from repro.wavelets import forward_haar

        c = forward_haar(np.full(64, 7.0))
        assert np.abs(c[32:]).max() < 1e-12


class TestPlanGeometry:
    def test_low_lengths_shrink_monotonically(self):
        plan = WaveletPlan.create((100, 37, 64))
        for before, after in zip(plan.low_lengths, plan.low_lengths[1:]):
            assert all(a <= b for a, b in zip(after, before))

    def test_axis_levels_respect_rule(self):
        plan = WaveletPlan.create((256, 8, 7))
        assert plan.axis_levels == (6, 1, 0)

    def test_degenerate_axis_never_transformed(self, rng):
        x = rng.standard_normal((64, 1))
        c, plan = forward(x)
        assert plan.axis_levels[1] == 0
        np.testing.assert_allclose(inverse(c, plan), x, atol=1e-9)


class TestDcGains:
    @pytest.mark.parametrize("wavelet", sorted(FILTERS))
    def test_gain_matches_constant_transform(self, wavelet):
        """The cached DC gain must equal what a constant signal measures."""
        fwd, _ = FILTERS[wavelet]
        c = fwd(np.ones(128))
        measured = float(np.mean(c[:64]))
        assert lowpass_dc_gain(wavelet) == pytest.approx(measured, rel=1e-10)

    def test_cdf97_gain_value(self):
        """With near-unit-norm basis scaling the low-pass DC gain is
        sqrt(2) per level — the orthonormal-wavelet convention (the raw
        lifting low-pass filter sums to K = 1.2302, and the s *= sqrt(2)/K
        scaling maps that to exactly sqrt(2))."""
        assert lowpass_dc_gain("cdf97") == pytest.approx(np.sqrt(2.0), rel=1e-12)
