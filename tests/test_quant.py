"""Dead-zone mid-riser quantizer (Sec. III-C)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgumentError
from repro.quant import MAX_INT_MAGNITUDE, dequantize, integerize, quantize_error_bound


class TestIntegerize:
    def test_dead_zone_maps_to_zero(self):
        vals = np.array([-0.9, -0.5, 0.0, 0.3, 0.999])
        mags, neg = integerize(vals, 1.0)
        assert np.all(mags == 0)

    def test_magnitudes_floor(self):
        vals = np.array([1.0, 1.5, 2.0, 2.5, -3.7])
        mags, neg = integerize(vals, 1.0)
        assert mags.tolist() == [1, 1, 2, 2, 3]
        assert neg.tolist() == [False, False, False, False, True]

    def test_arbitrary_non_power_of_two_step(self):
        """Sec. III-C: q need not be an integer power of two."""
        q = 0.3137
        vals = np.array([0.9, 1.7, -2.1])
        mags, _ = integerize(vals, q)
        assert mags.tolist() == [int(0.9 / q), int(1.7 / q), int(2.1 / q)]

    def test_invalid_step_rejected(self):
        for q in (0.0, -1.0, np.nan, np.inf):
            with pytest.raises(InvalidArgumentError):
                integerize(np.array([1.0]), q)

    def test_nan_input_rejected(self):
        with pytest.raises(InvalidArgumentError):
            integerize(np.array([np.nan]), 1.0)

    def test_overflow_rejected(self):
        with pytest.raises(InvalidArgumentError):
            integerize(np.array([1.0]), 1e-20)

    def test_max_magnitude_boundary(self):
        # just under the cap is accepted
        q = 1.0 / float(MAX_INT_MAGNITUDE >> np.uint64(1))
        mags, _ = integerize(np.array([1.0]), q)
        assert mags[0] > 0


class TestDequantize:
    def test_mid_riser_reconstruction(self):
        """Values in (iq, (i+1)q] reconstruct at (i + 1/2) q."""
        q = 0.25
        mags = np.array([0, 1, 4], dtype=np.uint64)
        neg = np.array([False, False, True])
        out = dequantize(mags, neg, q)
        np.testing.assert_allclose(out, [0.0, 1.5 * q, -4.5 * q])

    def test_round_trip_error_bounded(self, rng):
        q = 0.01
        vals = rng.standard_normal(1000) * 5
        mags, neg = integerize(vals, q)
        rec = dequantize(mags, neg, q)
        err = np.abs(rec - vals)
        coded = mags > 0
        assert err[coded].max() <= q / 2 + 1e-12
        assert err.max() <= quantize_error_bound(q) + 1e-12


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
    ),
    st.floats(min_value=1e-4, max_value=1e3),
)
def test_quantizer_error_bound_property(values, q):
    vals = np.asarray(values)
    mags, neg = integerize(vals, q)
    rec = dequantize(mags, neg, q)
    err = np.abs(rec - vals)
    # dead zone error <= q; coded error <= q/2 (paper Sec. III-C).  The
    # slack term covers floating-point rounding in |v|/q and (m+0.5)*q —
    # the same slop the SPERR pipeline absorbs in its t/2 outlier margin.
    slack = 1e-12 * max(1.0, float(np.abs(vals).max()))
    assert err.max() <= q + slack
    coded = mags > 0
    if coded.any():
        assert err[coded].max() <= q / 2 + slack


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=-1e8, max_value=1e8, allow_nan=False), min_size=1, max_size=30),
    st.floats(min_value=1e-6, max_value=1e2),
)
def test_sign_preservation_property(values, q):
    vals = np.asarray(values)
    mags, neg = integerize(vals, q)
    rec = dequantize(mags, neg, q)
    coded = mags > 0
    assert np.all(np.sign(rec[coded]) == np.sign(vals[coded]))
