"""The Lorenzo predictor path of the SZ-like baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.szlike import SzLikeCompressor
from repro.compressors.szlike.lorenzo import (
    lorenzo_decode,
    lorenzo_encode,
    wavefronts,
)
from repro.core.modes import PweMode
from repro.errors import InvalidArgumentError


class TestWavefronts:
    @pytest.mark.parametrize("shape", [(7,), (5, 8), (3, 4, 5)])
    def test_partition_every_point_once(self, shape):
        seen = np.zeros(shape, dtype=int)
        for front in wavefronts(shape):
            seen[front] += 1
        assert np.all(seen == 1)

    def test_ascending_diagonals(self):
        fronts = wavefronts((4, 4))
        sums = [int(f[0][0] + f[1][0]) for f in fronts]
        assert sums == sorted(sums)
        assert len(fronts) == 7  # s = 0..6

    def test_dependency_order(self):
        """Every stencil neighbour of a wavefront lies on an earlier one."""
        shape = (5, 6)
        rank = np.zeros(shape, dtype=int)
        for s, front in enumerate(wavefronts(shape)):
            rank[front] = s
        for i in range(1, 5):
            for j in range(1, 6):
                assert rank[i - 1, j] < rank[i, j]
                assert rank[i, j - 1] < rank[i, j]
                assert rank[i - 1, j - 1] < rank[i, j]

    def test_4d_rejected(self):
        with pytest.raises(InvalidArgumentError):
            wavefronts((2, 2, 2, 2))


class TestLorenzoCodec:
    @pytest.mark.parametrize("shape", [(40,), (12, 17), (7, 9, 8)])
    def test_round_trip_error_bound(self, shape, rng):
        data = rng.standard_normal(shape).cumsum(axis=-1)
        t = (data.max() - data.min()) / 2**14
        out = lorenzo_decode(shape, t, *lorenzo_encode(data, t))
        assert np.abs(out - data).max() <= t

    def test_exactly_predictable_data_costs_nothing(self):
        """A bilinear ramp is reproduced exactly by the Lorenzo stencil
        (its second mixed differences vanish), so all bins are zero."""
        i, j = np.meshgrid(np.arange(16.0), np.arange(16.0), indexing="ij")
        data = 3.0 * i + 2.0 * j + 5.0
        codes, escape, wide, exact = lorenzo_encode(data, 1e-6)
        interior = codes.size - (16 + 16 - 1)  # first row/col carry ramps
        assert np.count_nonzero(codes) <= codes.size - interior + 8
        assert exact.size == 0

    def test_escape_paths(self, rng):
        """Huge dynamic range forces wide codes and exact storage."""
        data = rng.standard_normal((10, 10))
        data[5, 5] = 1e9  # violent spike
        t = 1e-7
        codes, escape, wide, exact = lorenzo_encode(data, t)
        assert escape.any()
        out = lorenzo_decode(data.shape, t, codes, escape, wide, exact)
        assert np.abs(out - data).max() <= t


class TestLorenzoCompressor:
    @pytest.mark.parametrize("idx", [8, 16, 28])
    def test_strict_bound(self, idx, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**idx
        c = SzLikeCompressor(interpolation="lorenzo")
        recon = c.decompress(c.compress(smooth_field, PweMode(t)))
        assert np.abs(recon - smooth_field).max() <= t

    def test_payload_self_describes_predictor(self, smooth_field):
        """A Lorenzo payload decodes with any SzLikeCompressor instance."""
        t = (smooth_field.max() - smooth_field.min()) / 2**10
        payload = SzLikeCompressor(interpolation="lorenzo").compress(
            smooth_field, PweMode(t)
        )
        recon = SzLikeCompressor(interpolation="cubic").decompress(payload)
        assert np.abs(recon - smooth_field).max() <= t

    def test_smooth_data_compresses(self, rng):
        g = np.linspace(0, 1, 40)
        data = np.outer(np.sin(2 * np.pi * g), np.cos(2 * np.pi * g))
        t = (data.max() - data.min()) / 2**10
        payload = SzLikeCompressor(interpolation="lorenzo").compress(data, PweMode(t))
        assert 8 * len(payload) / data.size < 6.0

    def test_rough_data_bound_holds(self, rough_field):
        t = (rough_field.max() - rough_field.min()) / 2**20
        c = SzLikeCompressor(interpolation="lorenzo")
        recon = c.decompress(c.compress(rough_field, PweMode(t)))
        assert np.abs(recon - rough_field).max() <= t
