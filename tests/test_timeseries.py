"""Time-series archives and the simulation substrate."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import (
    compress_frames,
    decompress_frame,
    decompress_frames,
    frame_count,
)
from repro.datasets import AdvectionDiffusion
from repro.errors import InvalidArgumentError, StreamFormatError


class TestAdvectionDiffusion:
    def test_deterministic(self):
        a = AdvectionDiffusion((16, 16), seed=3)
        b = AdvectionDiffusion((16, 16), seed=3)
        a.step(5)
        b.step(5)
        np.testing.assert_array_equal(a.state, b.state)

    def test_mass_conserved(self):
        sim = AdvectionDiffusion((24, 24), seed=1)
        before = sim.total_mass()
        sim.step(50)
        assert sim.total_mass() == pytest.approx(before, abs=1e-8)

    def test_diffusion_smooths(self):
        sim = AdvectionDiffusion((32, 32), seed=2, init_slope=0.5)
        rough = float(np.abs(np.diff(sim.state, axis=0)).mean())
        sim.step(100)
        smooth = float(np.abs(np.diff(sim.state, axis=0)).mean())
        assert smooth < rough / 2

    def test_stability_guard(self):
        with pytest.raises(InvalidArgumentError):
            AdvectionDiffusion((8, 8), kappa=1.0, dt=10.0)

    def test_restart_from_state(self):
        sim = AdvectionDiffusion((16, 16), seed=4)
        sim.step(10)
        checkpoint = sim.state.copy()
        sim.step(10)
        final = sim.state.copy()
        sim2 = AdvectionDiffusion((16, 16), seed=4)
        sim2.set_state(checkpoint)
        sim2.step(10)
        np.testing.assert_allclose(sim2.state, final, atol=1e-12)

    def test_bad_args(self):
        with pytest.raises(InvalidArgumentError):
            AdvectionDiffusion((4, 4, 4, 4))
        with pytest.raises(InvalidArgumentError):
            AdvectionDiffusion((8, 8), velocity=(1.0,))
        sim = AdvectionDiffusion((8, 8))
        with pytest.raises(InvalidArgumentError):
            sim.set_state(np.zeros((4, 4)))
        with pytest.raises(InvalidArgumentError):
            sim.step(-1)


class TestTimeSeriesArchive:
    @pytest.fixture(scope="class")
    def frames(self):
        sim = AdvectionDiffusion((20, 20), seed=7)
        out = [sim.state.copy()]
        for _ in range(3):
            sim.step(15)
            out.append(sim.state.copy())
        return out

    def test_round_trip_all_frames(self, frames):
        t = repro.tolerance_from_idx(frames[0], 12)
        payload, results = compress_frames(frames, repro.PweMode(t))
        assert frame_count(payload) == len(frames)
        assert len(results) == len(frames)
        for original, recon in zip(frames, decompress_frames(payload)):
            assert np.abs(recon - original).max() <= t

    def test_random_access(self, frames):
        t = repro.tolerance_from_idx(frames[0], 12)
        payload, _ = compress_frames(frames, repro.PweMode(t))
        recon2 = decompress_frame(payload, 2)
        assert np.abs(recon2 - frames[2]).max() <= t
        # negative indexing works like a sequence
        last = decompress_frame(payload, -1)
        np.testing.assert_array_equal(last, decompress_frame(payload, len(frames) - 1))

    def test_per_frame_modes(self, frames):
        modes = [
            repro.PweMode(repro.tolerance_from_idx(f, idx))
            for f, idx in zip(frames, (8, 12, 16, 20))
        ]
        payload, results = compress_frames(frames, modes)
        sizes = [r.nbytes for r in results]
        assert sizes == sorted(sizes)  # tighter tolerance => more bytes

    def test_mixed_frame_shapes(self):
        frames = [np.ones((8, 8)), np.zeros((12, 10)) + 0.5]
        payload, _ = compress_frames(frames, repro.PweMode(1e-6))
        assert decompress_frame(payload, 0).shape == (8, 8)
        assert decompress_frame(payload, 1).shape == (12, 10)

    def test_errors(self, frames):
        with pytest.raises(InvalidArgumentError):
            compress_frames([], repro.PweMode(0.1))
        with pytest.raises(InvalidArgumentError):
            compress_frames(frames, [repro.PweMode(0.1)])  # count mismatch
        t = repro.tolerance_from_idx(frames[0], 10)
        payload, _ = compress_frames(frames, repro.PweMode(t))
        with pytest.raises(InvalidArgumentError):
            decompress_frame(payload, 99)
        with pytest.raises(StreamFormatError):
            frame_count(b"NOTANARCHIVE")
        with pytest.raises(StreamFormatError):
            frame_count(payload[: len(payload) // 2])
