"""Command-line interface round trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import EXIT_BAD_ARGS, EXIT_CORRUPT, build_parser, main
from repro.datasets import spectral_field


@pytest.fixture
def npy_field(tmp_path):
    data = spectral_field((16, 16, 16), slope=3.0, seed=5)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


class TestCli:
    def test_compress_decompress_idx(self, npy_field, tmp_path, capsys):
        path, data = npy_field
        out = tmp_path / "field.sperr"
        back = tmp_path / "back.npy"
        assert main(["compress", str(path), str(out), "--idx", "12", "--verbose"]) == 0
        printed = capsys.readouterr().out
        assert "bpp" in printed and "ratio" in printed
        assert main(["decompress", str(out), str(back)]) == 0
        recon = np.load(back)
        t = (data.max() - data.min()) / 2**12
        assert np.abs(recon - data).max() <= t

    def test_compress_pwe_flag(self, npy_field, tmp_path):
        path, data = npy_field
        out = tmp_path / "f.sperr"
        t = float(data.max() - data.min()) / 2**10
        assert main(["compress", str(path), str(out), "--pwe", str(t)]) == 0
        assert out.stat().st_size > 0

    def test_compress_bpp_flag(self, npy_field, tmp_path):
        path, data = npy_field
        out = tmp_path / "f.sperr"
        assert main(["compress", str(path), str(out), "--bpp", "2.0"]) == 0
        assert out.stat().st_size * 8 <= data.size * 2.3

    def test_chunked_with_workers(self, npy_field, tmp_path):
        path, data = npy_field
        out = tmp_path / "f.sperr"
        back = tmp_path / "b.npy"
        assert main([
            "compress", str(path), str(out), "--idx", "10", "--chunk", "8",
            "--workers", "2",
        ]) == 0
        assert main(["decompress", str(out), str(back)]) == 0
        t = (data.max() - data.min()) / 2**10
        assert np.abs(np.load(back) - data).max() <= t

    def test_info(self, npy_field, tmp_path, capsys):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        main(["compress", str(path), str(out), "--idx", "10"])
        assert main(["info", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "(16, 16, 16)" in printed
        assert "PWE-bounded" in printed

    def test_info_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.sperr"
        bad.write_bytes(b"not a container")
        assert main(["info", str(bad)]) == EXIT_CORRUPT
        assert "error" in capsys.readouterr().err

    def test_info_reports_format_version(self, npy_field, tmp_path, capsys):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        main(["compress", str(path), str(out), "--idx", "10"])
        capsys.readouterr()
        assert main(["info", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "v2" in printed and "CRC-protected" in printed

    def test_error_path_returns_bad_args(self, npy_field, tmp_path, capsys):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        assert main(["compress", str(path), str(out), "--pwe", "-1.0"]) == EXIT_BAD_ARGS
        assert "error" in capsys.readouterr().err

    def test_decompress_corrupt_returns_corrupt_code(self, npy_field, tmp_path, capsys):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        main(["compress", str(path), str(out), "--idx", "10"])
        payload = bytearray(out.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        out.write_bytes(bytes(payload))
        capsys.readouterr()
        code = main(["decompress", str(out), str(tmp_path / "b.npy")])
        assert code == EXIT_CORRUPT
        err = capsys.readouterr().err
        assert err.startswith("error:") and "\n" not in err.rstrip("\n")

    def test_decompress_salvage_recovers(self, npy_field, tmp_path, capsys):
        path, data = npy_field
        out = tmp_path / "f.sperr"
        back = tmp_path / "b.npy"
        main(["compress", str(path), str(out), "--idx", "10", "--chunk", "8"])
        payload = bytearray(out.read_bytes())
        payload[-20] ^= 0xFF  # damage the last chunk's stream
        out.write_bytes(bytes(payload))
        capsys.readouterr()
        assert main(["decompress", str(out), str(back), "--salvage"]) == 0
        err = capsys.readouterr().err
        assert "salvage" in err
        recon = np.load(back)
        assert recon.shape == data.shape
        assert np.isnan(recon).any() and not np.isnan(recon).all()

    def test_decompress_salvage_fill_value(self, npy_field, tmp_path, capsys):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        back = tmp_path / "b.npy"
        main(["compress", str(path), str(out), "--idx", "10", "--chunk", "8"])
        payload = bytearray(out.read_bytes())
        payload[-20] ^= 0xFF
        out.write_bytes(bytes(payload))
        assert main([
            "decompress", str(out), str(back), "--salvage", "--fill-value", "-7.5",
        ]) == 0
        recon = np.load(back)
        assert (recon == -7.5).any() and not np.isnan(recon).any()

    def test_fill_value_requires_salvage(self, npy_field, tmp_path, capsys):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        back = tmp_path / "b.npy"
        main(["compress", str(path), str(out), "--idx", "10"])
        capsys.readouterr()
        code = main(["decompress", str(out), str(back), "--fill-value", "0"])
        assert code == EXIT_BAD_ARGS
        assert "--salvage" in capsys.readouterr().err

    def test_truncated_container_returns_corrupt_code(
        self, npy_field, tmp_path, capsys
    ):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        main(["compress", str(path), str(out), "--idx", "10"])
        out.write_bytes(out.read_bytes()[: out.stat().st_size // 2])
        capsys.readouterr()
        assert main(["decompress", str(out), str(tmp_path / "b.npy")]) == EXIT_CORRUPT
        assert main(["info", str(out)]) == EXIT_CORRUPT

    def test_salvage_on_clean_container_returns_zero(self, npy_field, tmp_path):
        path, data = npy_field
        out = tmp_path / "f.sperr"
        back = tmp_path / "b.npy"
        main(["compress", str(path), str(out), "--idx", "10", "--chunk", "8"])
        assert main(["decompress", str(out), str(back), "--salvage"]) == 0
        recon = np.load(back)
        assert recon.shape == data.shape and not np.isnan(recon).any()

    def test_compress_trace_writes_chrome_json(self, npy_field, tmp_path, capsys):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        trace = tmp_path / "trace.json"
        assert main([
            "compress", str(path), str(out), "--idx", "10",
            "--trace", str(trace), "--verbose",
        ]) == 0
        assert "stage" in capsys.readouterr().out  # --verbose prints the table
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        assert events and {e["ph"] for e in events} <= {"X", "C"}
        assert "speck.encode" in {e["name"] for e in events}

    def test_decompress_trace_writes_chrome_json(self, npy_field, tmp_path):
        path, _ = npy_field
        out = tmp_path / "f.sperr"
        back = tmp_path / "b.npy"
        trace = tmp_path / "trace.json"
        main(["compress", str(path), str(out), "--idx", "10"])
        assert main(["decompress", str(out), str(back), "--trace", str(trace)]) == 0
        names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
        assert "sperr.decompress" in names

    def test_parser_requires_bound(self, npy_field, tmp_path):
        path, _ = npy_field
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", str(path), "out.sperr"])

    def test_pack_extract_round_trip(self, tmp_path, capsys):
        frames = []
        paths = []
        for i in range(3):
            f = spectral_field((12, 12), slope=2.0, seed=i)
            p = tmp_path / f"frame{i}.npy"
            np.save(p, f)
            frames.append(f)
            paths.append(str(p))
        archive = tmp_path / "run.sperrs"
        assert main(["pack", *paths, str(archive), "--idx", "12"]) == 0
        assert "packed 3 frames" in capsys.readouterr().out
        out = tmp_path / "frame.npy"
        assert main(["extract", str(archive), "1", str(out)]) == 0
        recon = np.load(out)
        t = (frames[1].max() - frames[1].min()) / 2**12
        assert np.abs(recon - frames[1]).max() <= t
        # negative index pulls the final frame
        assert main(["extract", str(archive), "-1", str(out)]) == 0
        t2 = (frames[2].max() - frames[2].min()) / 2**12
        assert np.abs(np.load(out) - frames[2]).max() <= t2

    def test_extract_bad_index(self, tmp_path, capsys):
        p = tmp_path / "f.npy"
        np.save(p, spectral_field((8, 8), slope=2.0, seed=0))
        archive = tmp_path / "a.sperrs"
        main(["pack", str(p), str(archive), "--idx", "8"])
        capsys.readouterr()
        assert main(["extract", str(archive), "5", str(tmp_path / "o.npy")]) == EXIT_BAD_ARGS
        assert "error" in capsys.readouterr().err

    def test_compare_subcommand(self, npy_field, capsys):
        path, _ = npy_field
        assert main([
            "compare", str(path), "--idx", "10",
            "--compressors", "sperr,zfp-like",
        ]) == 0
        printed = capsys.readouterr().out
        assert "sperr" in printed and "zfp-like" in printed
        assert "bound ok" in printed

    def test_compare_unknown_compressor_rejected(self, npy_field, capsys):
        path, _ = npy_field
        assert main(["compare", str(path), "--compressors", "gzip"]) == EXIT_BAD_ARGS
        assert "unknown compressor" in capsys.readouterr().err

    def test_wavelet_choice(self, npy_field, tmp_path):
        path, data = npy_field
        out = tmp_path / "f.sperr"
        back = tmp_path / "b.npy"
        assert main([
            "compress", str(path), str(out), "--idx", "10", "--wavelet", "cdf53",
        ]) == 0
        assert main(["decompress", str(out), str(back)]) == 0
        t = (data.max() - data.min()) / 2**10
        assert np.abs(np.load(back) - data).max() <= t
