"""Executor byte-identity: serial, thread, and process produce the same bits.

Paper Sec. III-D: chunk parallelism must not change the bitstream — the
chunks are independent and results are concatenated deterministically.
These tests pin that contract for the SPERR container and the chunked
baseline wrapper, including the shared-memory process path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PweMode, compress, decompress
from repro.core.chunking import plan_chunks
from repro.core.parallel import map_chunk_arrays
from repro.compressors import ChunkedCompressor, ZfpLikeCompressor

EXECUTORS = ["serial", "thread", "process", "batch"]


@pytest.fixture(scope="module")
def volume():
    rng = np.random.default_rng(17)
    x = np.linspace(0.0, 4.0 * np.pi, 40)
    field = np.sin(x)[:, None, None] * np.cos(x)[None, :, None] * x[None, None, :]
    return field + 0.05 * rng.normal(size=(40, 40, 40))


class TestSperrContainerEquivalence:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_payload_and_reconstruction_match_serial(self, volume, executor):
        mode = PweMode(1e-3)
        serial = compress(volume, mode, chunk_shape=20, executor="serial")
        other = compress(volume, mode, chunk_shape=20, executor=executor, workers=2)
        assert other.payload == serial.payload
        rec_serial = decompress(serial.payload, executor="serial")
        rec_other = decompress(other.payload, executor=executor, workers=2)
        np.testing.assert_array_equal(rec_other, rec_serial)
        assert np.max(np.abs(rec_serial - volume)) <= mode.tolerance


class TestChunkedBaselineEquivalence:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_zfp_chunked_matches_serial(self, volume, executor):
        mode = PweMode(1e-2)
        serial = ChunkedCompressor(ZfpLikeCompressor(), 20).compress(volume, mode)
        comp = ChunkedCompressor(
            ZfpLikeCompressor(), 20, executor=executor, workers=2
        )
        payload = comp.compress(volume, mode)
        assert payload == serial
        np.testing.assert_array_equal(
            comp.decompress(payload),
            ChunkedCompressor(ZfpLikeCompressor(), 20).decompress(serial),
        )


def _chunk_checksum(part: np.ndarray, scale: float) -> bytes:
    """Picklable probe: byte-exact view of the chunk a worker received."""
    return (part * scale).tobytes()


class TestSharedMemoryPath:
    def test_process_workers_see_exact_chunk_bytes(self, volume):
        chunks = plan_chunks(volume.shape, 20)
        serial = map_chunk_arrays(
            _chunk_checksum, volume, chunks, args=(1.0,), executor="serial"
        )
        via_shm = map_chunk_arrays(
            _chunk_checksum, volume, chunks, args=(1.0,),
            executor="process", workers=2,
        )
        assert via_shm == serial

    def test_non_contiguous_input(self):
        base = np.arange(2 * 24 * 24 * 24, dtype=np.float64).reshape(2, 24, 24, 24)
        view = base[1]  # non-owning slice of a larger allocation
        chunks = plan_chunks(view.shape, 12)
        serial = map_chunk_arrays(
            _chunk_checksum, view, chunks, args=(2.0,), executor="serial"
        )
        via_shm = map_chunk_arrays(
            _chunk_checksum, view, chunks, args=(2.0,),
            executor="process", workers=2,
        )
        assert via_shm == serial
