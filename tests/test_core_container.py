"""Container format and the top-level compress/decompress API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import compress, decompress
from repro.core.modes import PweMode, SizeMode
from repro.errors import InvalidArgumentError, StreamFormatError


class TestContainer:
    def test_round_trip_float64(self, smooth_field):
        t = repro.tolerance_from_idx(smooth_field, 15)
        result = compress(smooth_field, PweMode(t))
        recon = decompress(result.payload)
        assert recon.dtype == np.float64
        assert np.abs(recon - smooth_field).max() <= t

    def test_round_trip_float32(self, rng):
        data = rng.standard_normal((24, 24)).astype(np.float32)
        t = repro.tolerance_from_idx(data, 10)
        result = compress(data, PweMode(t))
        recon = decompress(result.payload)
        assert recon.dtype == np.float32
        assert np.abs(recon.astype(np.float64) - data).max() <= t * (1 + 1e-5)

    def test_integer_input_promoted(self):
        data = np.arange(64).reshape(8, 8)
        result = compress(data, PweMode(0.01))
        recon = decompress(result.payload)
        assert np.abs(recon - data).max() <= 0.01

    @pytest.mark.parametrize("rank", [1, 2, 3])
    def test_all_ranks(self, rank, rng):
        shape = (40,) if rank == 1 else (20, 14) if rank == 2 else (10, 12, 8)
        data = rng.standard_normal(shape)
        t = repro.tolerance_from_idx(data, 12)
        recon = decompress(compress(data, PweMode(t)).payload)
        assert recon.shape == shape
        assert np.abs(recon - data).max() <= t

    def test_chunked_preserves_guarantee(self, smooth_field):
        """Chunked compression must satisfy the same PWE bound; it only
        costs extra bits (Sec. V-B)."""
        t = repro.tolerance_from_idx(smooth_field, 15)
        whole = compress(smooth_field, PweMode(t))
        chunked = compress(smooth_field, PweMode(t), chunk_shape=10)
        assert len(chunked.reports) > 1
        recon = decompress(chunked.payload)
        assert np.abs(recon - smooth_field).max() <= t
        assert chunked.bpp >= whole.bpp  # boundaries cost compression

    def test_result_accounting(self, smooth_field):
        t = repro.tolerance_from_idx(smooth_field, 10)
        result = compress(smooth_field, PweMode(t), chunk_shape=12)
        assert result.npoints == smooth_field.size
        assert result.nbytes == len(result.payload)
        assert result.n_outliers == sum(r.n_outliers for r in result.reports)

    def test_size_mode_container(self, rough_field):
        result = compress(rough_field, SizeMode(bpp=4.0))
        assert result.bpp <= 4.2
        recon = decompress(result.payload)
        assert recon.shape == rough_field.shape

    def test_executors_agree(self, smooth_field):
        t = repro.tolerance_from_idx(smooth_field, 10)
        serial = compress(smooth_field, PweMode(t), chunk_shape=12, executor="serial")
        threaded = compress(
            smooth_field, PweMode(t), chunk_shape=12, executor="thread", workers=3
        )
        assert serial.payload == threaded.payload  # deterministic output
        np.testing.assert_array_equal(
            decompress(serial.payload), decompress(threaded.payload, executor="thread", workers=2)
        )

    def test_lossless_method_stored(self, smooth_field):
        t = repro.tolerance_from_idx(smooth_field, 10)
        result = compress(smooth_field, PweMode(t), lossless_method="stored")
        recon = decompress(result.payload)
        assert np.abs(recon - smooth_field).max() <= t

    def test_bad_magic_rejected(self):
        with pytest.raises(StreamFormatError):
            decompress(b"NOTSPERR" + b"\x00" * 32)

    def test_truncated_container_rejected(self, smooth_field):
        t = repro.tolerance_from_idx(smooth_field, 10)
        payload = compress(smooth_field, PweMode(t)).payload
        with pytest.raises((StreamFormatError, Exception)):
            decompress(payload[: len(payload) // 2])

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(InvalidArgumentError):
            compress(np.array(["a", "b"]), PweMode(0.1))

    def test_top_level_api_reexports(self, smooth_field):
        """The README quickstart path: repro.compress/decompress."""
        t = repro.tolerance_from_idx(smooth_field, 10)
        result = repro.compress(smooth_field, repro.PweMode(t))
        recon = repro.decompress(result.payload)
        assert np.abs(recon - smooth_field).max() <= t
