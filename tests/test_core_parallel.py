"""The chunk-parallel executor (OpenMP substitute, Sec. III-D)."""

from __future__ import annotations

import time

import pytest

from repro.core.parallel import (
    EXECUTORS,
    chunk_map,
    default_workers,
    robust_chunk_map,
)
from repro.errors import InvalidArgumentError


def _square(x: int) -> int:
    return x * x


class TestChunkMap:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_preserves_order(self, executor):
        items = list(range(20))
        out = chunk_map(_square, items, executor=executor, workers=4)
        assert out == [x * x for x in items]

    def test_process_executor(self):
        out = chunk_map(_square, [1, 2, 3], executor="process", workers=2)
        assert out == [1, 4, 9]

    def test_empty_input(self):
        assert chunk_map(_square, []) == []

    def test_single_item_stays_serial(self):
        assert chunk_map(_square, [7], executor="thread", workers=8) == [49]

    def test_unknown_executor_rejected(self):
        with pytest.raises(InvalidArgumentError):
            chunk_map(_square, [1], executor="openmp")

    def test_invalid_workers_rejected(self):
        with pytest.raises(InvalidArgumentError):
            chunk_map(_square, [1, 2], executor="thread", workers=0)

    def test_exceptions_propagate(self):
        def boom(x):
            raise ValueError("chunk failed")

        with pytest.raises(ValueError):
            chunk_map(boom, [1, 2], executor="thread", workers=2)

    def test_executor_registry(self):
        assert set(EXECUTORS) == {"serial", "thread", "process", "batch"}

    def test_batch_degrades_to_serial_loop(self):
        assert chunk_map(_square, [1, 2, 3], executor="batch") == [1, 4, 9]

    def test_default_workers_leaves_headroom(self):
        """Sec. V-D: leave a few cores for system processes."""
        import os

        assert default_workers() == max(1, (os.cpu_count() or 1) - 1)


class TestRobustChunkMap:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_clean_run_matches_chunk_map(self, executor):
        items = list(range(12))
        out, notes = robust_chunk_map(_square, items, executor=executor, workers=4)
        assert out == [x * x for x in items]
        assert notes == []

    def test_func_exceptions_propagate_serial(self):
        def boom(x):
            raise RuntimeError("chunk failed")

        with pytest.raises(RuntimeError):
            robust_chunk_map(boom, [1, 2], executor="serial")

    def test_timeout_degrades_to_serial(self):
        """A task slower than the timeout is retried and finally run
        serially, with every degradation recorded in the notes."""
        calls = []

        def slow_once(x):
            calls.append(x)
            if x == 1 and calls.count(1) <= 2:
                time.sleep(0.6)
            return x * x

        out, notes = robust_chunk_map(
            slow_once, [0, 1, 2], executor="thread", workers=2, timeout=0.15
        )
        assert out == [0, 1, 4]
        assert any("timeout" in n for n in notes)
        assert any("serial" in n for n in notes)

    def test_unknown_executor_rejected(self):
        with pytest.raises(InvalidArgumentError):
            robust_chunk_map(_square, [1], executor="openmp")
