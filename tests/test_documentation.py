"""Documentation contract: every public item is documented.

Deliverable (e) requires doc comments on every public item; this test
makes the requirement executable — each package's ``__all__`` symbols
must carry docstrings, and the repo-level documents must exist and
cross-reference each other.
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro",
    "repro.bitstream",
    "repro.lossless",
    "repro.wavelets",
    "repro.quant",
    "repro.speck",
    "repro.outlier",
    "repro.core",
    "repro.compressors",
    "repro.metrics",
    "repro.datasets",
    "repro.analysis",
    "repro.obs",
    "repro.store",
    "repro.service",
]


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 10, package

    @pytest.mark.parametrize("package", PACKAGES)
    def test_public_symbols_documented(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        undocumented = []
        for name in exported:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{package}: undocumented {undocumented}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_public_classes_document_public_methods(self, package):
        module = importlib.import_module(package)
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for mname, method in inspect.getmembers(obj, inspect.isfunction):
                if mname.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if not (method.__doc__ and method.__doc__.strip()):
                    missing.append(f"{name}.{mname}")
        assert not missing, f"{package}: undocumented methods {missing}"


class TestRepoDocuments:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/algorithms.md", "docs/architecture.md", "docs/file-format.md",
         "docs/api.md", "docs/observability.md", "docs/store.md",
         "docs/robustness.md", "docs/service.md", "docs/adaptive.md",
         "benchmarks/README.md"],
    )
    def test_document_exists_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 800, f"{name} looks like a stub"

    def test_readme_references_key_documents(self):
        readme = (ROOT / "README.md").read_text()
        assert "DESIGN.md" in readme
        assert "EXPERIMENTS.md" in readme

    def test_experiments_covers_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for item in ["Table I"] + [f"Fig. {i}" for i in range(1, 12)]:
            assert item in text, f"EXPERIMENTS.md missing {item}"

    def test_design_has_experiment_index(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Experiment index" in text
        for bench in ("bench_fig8", "bench_fig9", "bench_fig11"):
            assert bench in text
