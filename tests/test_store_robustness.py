"""Store durability and masked-frame robustness.

The index write must survive a crash at any point (fsync + atomic
rename: either the old index or the new one, never a torn file), and
masked frames must restore their NaN/Inf pattern through windowed
reads, ``info()``, and the index roundtrip.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.modes import PweMode
from repro.errors import ReproError
from repro.store import (
    INDEX_NAME,
    StoreWriter,
    open_store,
    parse_index,
    write_store,
)

TOL = 1e-3


@pytest.fixture()
def masked_frame():
    rng = np.random.default_rng(5)
    data = rng.normal(size=(24, 24)).cumsum(axis=0)
    data[:6, :6] = np.nan
    data[0, -1] = np.inf
    data[-1, 0] = -np.inf
    return data


class TestDurability:
    def test_close_fsyncs_index_and_shards(self, tmp_path, masked_frame, monkeypatch):
        synced: list[int] = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        write_store(tmp_path / "s", masked_frame, PweMode(TOL))
        # At least shard + tmp index + directory were flushed to disk.
        assert len(synced) >= 3

    def test_no_tmp_file_left_behind(self, tmp_path, masked_frame):
        write_store(tmp_path / "s", masked_frame, PweMode(TOL))
        leftovers = [p.name for p in (tmp_path / "s").iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_crash_before_replace_leaves_no_index(self, tmp_path, masked_frame, monkeypatch):
        # Simulate a crash between the tmp write and the atomic rename:
        # os.replace never runs, so the store has no index at all —
        # a clearly absent store, not a torn one.
        def boom(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            write_store(tmp_path / "s", masked_frame, PweMode(TOL))
        assert not (tmp_path / "s" / INDEX_NAME).exists()

    @pytest.mark.parametrize("cut_fraction", [0.25, 0.5, 0.9])
    def test_torn_index_is_rejected(self, tmp_path, masked_frame, cut_fraction):
        # A torn write (power loss mid-write without the fsync+rename
        # protocol) must surface as a structured error, never a crash
        # or a silently wrong store.
        write_store(tmp_path / "s", masked_frame, PweMode(TOL))
        index_path = tmp_path / "s" / INDEX_NAME
        payload = index_path.read_bytes()
        torn = payload[: int(len(payload) * cut_fraction)]
        with pytest.raises(ReproError):
            parse_index(torn)
        index_path.write_bytes(torn)
        with pytest.raises(ReproError):
            open_store(tmp_path / "s")

    def test_index_bitflip_is_rejected(self, tmp_path, masked_frame):
        write_store(tmp_path / "s", masked_frame, PweMode(TOL))
        index_path = tmp_path / "s" / INDEX_NAME
        buf = bytearray(index_path.read_bytes())
        buf[len(buf) // 2] ^= 0xFF
        with pytest.raises(ReproError):
            parse_index(bytes(buf))


class TestMaskedFrames:
    def test_index_carries_frame_masks(self, tmp_path, masked_frame):
        finite = np.nan_to_num(masked_frame, posinf=1.0, neginf=-1.0)
        with StoreWriter(tmp_path / "s", PweMode(TOL)) as writer:
            writer.append(masked_frame)
            writer.append(finite)
        index = parse_index((tmp_path / "s" / INDEX_NAME).read_bytes())
        assert len(index.frame_masks) == 2
        assert index.frame_masks[0] is not None
        assert index.frame_masks[1] is None

    def test_full_read_restores_mask(self, tmp_path, masked_frame):
        write_store(tmp_path / "s", masked_frame, PweMode(TOL))
        arr = open_store(tmp_path / "s")
        out = arr.read_window()
        assert np.array_equal(np.isnan(out), np.isnan(masked_frame))
        assert np.array_equal(np.isposinf(out), np.isposinf(masked_frame))
        assert np.array_equal(np.isneginf(out), np.isneginf(masked_frame))
        valid = np.isfinite(masked_frame)
        err = np.abs(out[valid] - masked_frame[valid]).max()
        assert err <= TOL * (1 + 1e-9)

    def test_window_read_slices_mask(self, tmp_path, masked_frame):
        write_store(tmp_path / "s", masked_frame, PweMode(TOL))
        arr = open_store(tmp_path / "s")
        window = (slice(2, 10), slice(0, 8))
        out = arr.read_window(window)
        assert np.array_equal(np.isnan(out), np.isnan(masked_frame[window]))

    def test_coarse_preview_stays_finite(self, tmp_path, masked_frame):
        # Coarse levels aggregate valid and masked fine samples; there
        # is no faithful mask at that resolution, so previews read the
        # filled field instead of leaking NaNs.
        write_store(tmp_path / "s", masked_frame, PweMode(TOL), chunk_shape=8)
        arr = open_store(tmp_path / "s")
        out = arr.read_window(level=1)
        assert np.isfinite(out).all()

    def test_info_reports_masked_frames(self, tmp_path, masked_frame):
        write_store(tmp_path / "s", masked_frame, PweMode(TOL))
        info = open_store(tmp_path / "s").info()
        assert info["masked_frames"] == [0]
        assert info["mask_summary"][0]["nan"] == 36
        assert info["mask_summary"][0]["pos_inf"] == 1
        assert info["mask_summary"][0]["neg_inf"] == 1
        assert info["mask_bytes"] > 0

    def test_unmasked_store_index_is_v1(self, tmp_path, masked_frame):
        # Finite inputs keep the legacy index magic byte-for-byte so
        # golden stores stay stable.
        finite = np.nan_to_num(masked_frame, posinf=1.0, neginf=-1.0)
        write_store(tmp_path / "s", finite, PweMode(TOL))
        payload = (tmp_path / "s" / INDEX_NAME).read_bytes()
        assert payload.startswith(b"SPRRIDX1")
        info = open_store(tmp_path / "s").info()
        assert info["masked_frames"] == []
