"""Random-access store: format, windowed reads, salvage, budget, CLI.

The load-bearing contracts pinned here:

* ``read_window`` at level 0 is **bit-exact** with slicing the full
  container decompression, for arbitrary windows (a Hypothesis sweep
  over random slice tuples, including single-voxel, edge, empty, and
  full-array windows), with the decoded-chunk cache on or off.
* Only intersecting chunks are touched — verified through the
  ``store.chunks.requested`` / ``store.chunks.decoded`` obs counters on
  a multi-chunk 64^3 store.
* A corrupted chunk honors ``on_error="salvage"``/``fill_value``:
  only the damaged chunk's window intersection is filled, everything
  else is recovered exactly, and the ``DecodeReport`` names the chunk.
* The footer index is integrity-checked (CRC) and refuses malformed
  grids before any shard I/O.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import decompress, obs
from repro.cli import EXIT_BAD_ARGS, EXIT_CORRUPT, main
from repro.core.container import DecodeResult
from repro.core.modes import PweMode
from repro.errors import IntegrityError, InvalidArgumentError, StreamFormatError
from repro.store import (
    StoreWriter,
    open_store,
    pack_index,
    parse_index,
    shard_name,
    write_store,
)
from repro.store.format import INDEX_NAME


def _smooth(shape, seed=7):
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    data = np.sin(2 * axes[0])
    for a in axes[1:]:
        data = data * np.cos(1.5 * a)
    return (data + 0.05 * rng.standard_normal(shape)).astype(np.float32)


@pytest.fixture(scope="module")
def store64(tmp_path_factory):
    """A multi-chunk 64^3 store (32^3 chunks -> 8 chunks, several shards)
    plus the bit-exact full reconstruction to compare windows against."""
    path = tmp_path_factory.mktemp("store64") / "st"
    data = _smooth((64, 64, 64))
    result = write_store(
        path, data, PweMode(2e-3), chunk_shape=32, shard_bytes=1 << 14
    )
    full = decompress(result.payload)
    return path, full


@pytest.fixture(scope="module")
def store_small(tmp_path_factory):
    """A small 3-D store (uneven chunk grid) for the property sweep,
    opened twice: once with the decoded-chunk cache, once without."""
    path = tmp_path_factory.mktemp("store_small") / "st"
    data = _smooth((20, 13, 9), seed=3)
    result = write_store(path, data, PweMode(1e-3), chunk_shape=8)
    full = decompress(result.payload)
    return full, open_store(path), open_store(path, cache_bytes=0)


class TestIndexFormat:
    def test_roundtrip(self, store64):
        path, _ = store64
        payload = (path / INDEX_NAME).read_bytes()
        index = parse_index(payload)
        assert pack_index(index) == payload
        assert index.n_chunks == 8
        assert index.n_frames == 1
        assert index.n_shards >= 2

    def test_crc_detects_corruption(self, store64):
        path, _ = store64
        payload = bytearray((path / INDEX_NAME).read_bytes())
        payload[30] ^= 0x5A
        with pytest.raises(IntegrityError):
            parse_index(bytes(payload))

    def test_bad_magic(self):
        with pytest.raises(StreamFormatError):
            parse_index(b"NOTANIDX" + b"\x00" * 64)

    def test_truncated_index(self, store64):
        path, _ = store64
        payload = (path / INDEX_NAME).read_bytes()
        for cut in (4, 12, 20, len(payload) - 3):
            with pytest.raises(StreamFormatError):
                parse_index(payload[:cut])


class TestReadWindow:
    def test_full_read_matches_container(self, store64):
        path, full = store64
        arr = open_store(path)
        out = arr.read()
        assert out.dtype == full.dtype
        assert np.array_equal(out, full)

    @pytest.mark.parametrize(
        "window",
        [
            (slice(0, 32), slice(0, 32), slice(0, 32)),      # one chunk
            (slice(8, 40), slice(16, 48), slice(0, 64)),     # crosses chunks
            (slice(31, 33), slice(31, 33), slice(31, 33)),   # 2^3 across all 8
            (slice(63, 64), slice(0, 1), slice(5, 6)),       # single voxel
            (slice(0, 64), slice(0, 64), slice(0, 64)),      # full array
            (slice(-10, None), slice(None, -50), slice(None)),  # negatives
        ],
    )
    def test_window_matches_slicing(self, store64, window):
        path, full = store64
        arr = open_store(path)
        assert np.array_equal(arr.read_window(window), full[window])

    def test_int_index_squeezes(self, store64):
        path, full = store64
        arr = open_store(path)
        out = arr.read_window((7, slice(0, 10)))
        assert out.shape == (10, 64)
        assert np.array_equal(out, full[7, 0:10])
        assert np.array_equal(arr.read_window((-1, -1, -1)), full[-1, -1, -1])

    def test_empty_window(self, store64):
        path, full = store64
        arr = open_store(path)
        out = arr.read_window((slice(5, 5), slice(0, 10), slice(None)))
        assert out.shape == (0, 10, 64)

    def test_only_intersecting_chunks_decoded(self, store64):
        path, _ = store64
        arr = open_store(path)  # fresh cache
        with obs.trace("t") as tracer:
            arr.read_window((slice(2, 20), slice(40, 60), slice(33, 64)))
        c = tracer.report().counters
        # the window lives in exactly one 32^3 chunk of the 8
        assert c["store.chunks.requested"] == 1
        assert c["store.chunks.decoded"] == 1
        assert c.get("store.cache.hits", 0) + c["store.cache.misses"] == 1
        assert c["store.bytes.disk"] > 0

    def test_counters_reconcile_when_warm(self, store64):
        path, _ = store64
        arr = open_store(path)
        window = (slice(8, 40), slice(8, 40), slice(8, 40))  # all 8 chunks
        arr.read_window(window)
        with obs.trace("t") as tracer:
            arr.read_window(window)
        c = tracer.report().counters
        assert c["store.chunks.requested"] == 8
        assert c.get("store.cache.hits", 0) == 8
        assert c.get("store.cache.misses", 0) == 0
        assert c.get("store.chunks.decoded", 0) == 0
        assert c.get("store.bytes.disk", 0) == 0

    def test_invalid_windows(self, store64):
        path, _ = store64
        arr = open_store(path)
        with pytest.raises(InvalidArgumentError):
            arr.read_window((slice(0, 10, 2),))  # stepped
        with pytest.raises(InvalidArgumentError):
            arr.read_window((0, 0, 0, 0))  # too many axes
        with pytest.raises(InvalidArgumentError):
            arr.read_window((100, 0, 0))  # index out of bounds
        with pytest.raises(InvalidArgumentError):
            arr.read_window("0:5")  # not a tuple
        with pytest.raises(InvalidArgumentError):
            arr.read_window(None, frame=3)
        with pytest.raises(InvalidArgumentError):
            arr.read_window(None, level=99)
        with pytest.raises(InvalidArgumentError):
            arr.read_window(None, budget=0)
        with pytest.raises(InvalidArgumentError):
            arr.read_window(None, on_error="ignore")


@st.composite
def windows(draw):
    """A random window over a (20, 13, 9) store: slices (possibly empty,
    negative, open-ended) and integer indices, variable axis count."""
    shape = (20, 13, 9)
    naxes = draw(st.integers(0, 3))
    window = []
    for ax in range(naxes):
        n = shape[ax]
        kind = draw(st.sampled_from(["slice", "int", "full"]))
        if kind == "full":
            window.append(slice(None))
        elif kind == "int":
            window.append(draw(st.integers(-n, n - 1)))
        else:
            lo = draw(st.one_of(st.none(), st.integers(-n - 2, n + 2)))
            hi = draw(st.one_of(st.none(), st.integers(-n - 2, n + 2)))
            window.append(slice(lo, hi))
    return tuple(window)


class TestWindowProperty:
    @settings(max_examples=40, deadline=None)
    @given(window=windows())
    def test_matches_full_decode_cached_and_uncached(
        self, store_small, window
    ):
        # The cached store accumulates entries across examples by design:
        # results must be identical whether a chunk comes from disk or
        # from a previous example's cache entry.
        full, cached, uncached = store_small
        expected = full[window]
        got_cached = cached.read_window(window)
        got_cold = uncached.read_window(window)
        assert got_cached.shape == expected.shape
        assert np.array_equal(got_cached, expected)
        assert np.array_equal(got_cold, expected)


class TestSalvage:
    @pytest.fixture()
    def damaged(self, tmp_path):
        """A 40^3 store with one chunk's bytes flipped in its shard."""
        data = _smooth((40, 40, 40), seed=11)
        path = tmp_path / "st"
        result = write_store(
            path, data, PweMode(1e-3), chunk_shape=16, shard_bytes=1 << 14
        )
        full = decompress(result.payload)
        arr = open_store(path)
        bad = 5
        entry = arr.index.entries[0][bad]
        shard = path / shard_name(entry.shard)
        raw = bytearray(shard.read_bytes())
        raw[entry.offset + 3] ^= 0xFF
        shard.write_bytes(bytes(raw))
        return path, full, bad

    def test_raise_mode_raises(self, damaged):
        path, _, _ = damaged
        with pytest.raises(IntegrityError):
            open_store(path).read()

    def test_window_avoiding_damage_still_reads(self, damaged):
        path, full, _ = damaged
        arr = open_store(path)
        # chunk 5 does not intersect this window, so raise mode succeeds
        window = (slice(0, 16), slice(0, 16), slice(0, 16))
        assert np.array_equal(arr.read_window(window), full[window])

    def test_salvage_fills_only_damaged_intersection(self, damaged):
        path, full, bad = damaged
        arr = open_store(path)
        result = arr.read(on_error="salvage", fill_value=-7.5)
        assert isinstance(result, DecodeResult)
        assert result.report.failed_chunks == [bad]
        assert result.report.crc_mismatches == [bad]
        out = np.asarray(result)
        sl = arr.index.chunks[bad].slices()
        assert np.all(out[sl] == -7.5)
        mask = np.ones(out.shape, dtype=bool)
        mask[sl] = False
        assert np.array_equal(out[mask], full[mask])

    def test_salvage_default_fill_is_nan(self, damaged):
        path, _, bad = damaged
        arr = open_store(path)
        out = np.asarray(arr.read(on_error="salvage"))
        assert np.isnan(out[arr.index.chunks[bad].slices()]).all()

    def test_salvage_missing_shard(self, damaged):
        path, _, _ = damaged
        arr = open_store(path)
        victim = path / shard_name(0)
        affected = [
            i for i, e in enumerate(arr.index.entries[0]) if e.shard == 0
        ]
        victim.unlink()
        with pytest.raises(StreamFormatError):
            arr.read()
        result = arr.read(on_error="salvage", fill_value=0.0)
        assert set(affected) <= set(result.report.failed_chunks)

    def test_salvage_reports_ok_chunks(self, damaged):
        path, _, bad = damaged
        arr = open_store(path)
        result = arr.read(on_error="salvage")
        assert result.report.n_chunks == arr.n_chunks
        ok = [s.index for s in result.report.chunk_status if s.ok]
        assert bad not in ok and len(ok) == arr.n_chunks - 1


class TestMultiresAndBudget:
    def test_coarse_preview_shape_and_sanity(self, store64):
        path, full = store64
        arr = open_store(path)
        assert arr.max_level >= 1
        coarse = arr.read(level=1)
        assert coarse.shape == (32, 32, 32)
        # coarse preview approximates a 2x-downsampled volume
        ds = full[::2, ::2, ::2].astype(np.float64)
        err = np.abs(coarse.astype(np.float64) - ds).mean()
        assert err < 0.5 * np.abs(ds).mean() + 0.1

    def test_coarse_window_is_chunk_aligned(self, store64):
        path, _ = store64
        arr = open_store(path)
        # window inside one 32^3 chunk -> that chunk's level-1 box
        out = arr.read_window((slice(0, 10), slice(0, 10), slice(0, 10)), level=1)
        assert out.shape == (16, 16, 16)
        with pytest.raises(InvalidArgumentError):
            arr.read_window((3, slice(None), slice(None)), level=1)

    def test_budget_read_bypasses_cache(self, store64):
        path, full = store64
        arr = open_store(path)
        before = arr.cache.stats()["entries"]
        out = arr.read(budget=4096)
        assert out.shape == full.shape
        assert np.isfinite(out).all()
        assert arr.cache.stats()["entries"] == before
        # heavily budgeted output is a coarser reconstruction, not exact
        assert not np.array_equal(out, full)

    def test_generous_budget_is_exact(self, store64):
        path, full = store64
        arr = open_store(path, cache_bytes=0)
        out = arr.read(budget=1 << 30)
        assert np.array_equal(out, full)


class TestWriter:
    def test_multiframe_roundtrip(self, tmp_path):
        data = _smooth((24, 24), seed=2)
        with StoreWriter(tmp_path / "st", PweMode(1e-3), chunk_shape=16) as w:
            r0 = w.append(data)
            r1 = w.append(data * 2.0 + 1.0)
        arr = open_store(tmp_path / "st")
        assert arr.n_frames == 2
        assert np.array_equal(arr.read(frame=0), decompress(r0.payload))
        assert np.array_equal(arr.read(frame=1), decompress(r1.payload))

    def test_empty_store_refuses_close(self, tmp_path):
        w = StoreWriter(tmp_path / "st", PweMode(1e-3))
        with pytest.raises(InvalidArgumentError):
            w.close()

    def test_refuses_overwrite(self, tmp_path):
        write_store(tmp_path / "st", _smooth((10, 10)), PweMode(1e-3))
        with pytest.raises(InvalidArgumentError):
            StoreWriter(tmp_path / "st", PweMode(1e-3))

    def test_frame_shape_mismatch(self, tmp_path):
        with pytest.raises(InvalidArgumentError):
            with StoreWriter(tmp_path / "st", PweMode(1e-3)) as w:
                w.append(_smooth((10, 10)))
                w.append(_smooth((12, 12)))
        # failed build never published an index
        assert not (tmp_path / "st" / INDEX_NAME).exists()

    def test_open_missing_store(self, tmp_path):
        with pytest.raises(StreamFormatError):
            open_store(tmp_path / "nope")


class TestStoreCli:
    @pytest.fixture()
    def npys(self, tmp_path):
        f0 = tmp_path / "f0.npy"
        f1 = tmp_path / "f1.npy"
        np.save(f0, _smooth((24, 24, 24), seed=4))
        np.save(f1, _smooth((24, 24, 24), seed=5))
        return tmp_path, f0, f1

    def test_build_info_get(self, npys, capsys):
        tmp_path, f0, f1 = npys
        store = tmp_path / "st"
        out = tmp_path / "roi.npy"
        assert main(
            ["store", "build", str(f0), str(f1), str(store),
             "--pwe", "1e-3", "--chunk", "16"]
        ) == 0
        assert main(["store", "info", str(store)]) == 0
        text = capsys.readouterr().out
        assert "frames:    2" in text
        assert main(
            ["store", "get", str(store), str(out),
             "--window", "4:20,0:16,:", "--frame", "1"]
        ) == 0
        got = np.load(out)
        assert got.shape == (16, 16, 24)
        ref = open_store(store).read(frame=1)
        assert np.array_equal(got, np.asarray(ref)[4:20, 0:16, :])

    def test_get_window_matches_decode(self, npys):
        tmp_path, f0, _ = npys
        store = tmp_path / "st1"
        out = tmp_path / "w.npy"
        main(["store", "build", str(f0), str(store), "--pwe", "1e-3",
              "--chunk", "16"])
        assert main(
            ["store", "get", str(store), str(out), "--window", "3:19,5,:"]
        ) == 0
        arr = open_store(store)
        assert np.array_equal(np.load(out), np.asarray(arr.read())[3:19, 5, :])

    def test_bad_window_spec(self, npys):
        tmp_path, f0, _ = npys
        store = tmp_path / "st2"
        main(["store", "build", str(f0), str(store), "--pwe", "1e-3"])
        out = str(tmp_path / "x.npy")
        assert main(
            ["store", "get", str(store), out, "--window", "1:2:3"]
        ) == EXIT_BAD_ARGS
        assert main(
            ["store", "get", str(store), out, "--window", "abc"]
        ) == EXIT_BAD_ARGS
        assert main(
            ["store", "get", str(store), out, "--fill-value", "0"]
        ) == EXIT_BAD_ARGS

    def test_corrupt_index_exit_code(self, npys):
        tmp_path, f0, _ = npys
        store = tmp_path / "st3"
        main(["store", "build", str(f0), str(store), "--pwe", "1e-3"])
        index = store / INDEX_NAME
        raw = bytearray(index.read_bytes())
        raw[20] ^= 0xFF
        index.write_bytes(bytes(raw))
        assert main(["store", "info", str(store)]) == EXIT_CORRUPT
