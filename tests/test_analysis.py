"""Analysis harness: sweeps, scaling model, outlier studies, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    TABLE_II,
    banner,
    clark_evans_ratio,
    compare_outlier_coding,
    format_series,
    format_table,
    load_entry,
    lpt_makespan,
    outlier_map,
    q_sweep,
    rd_point,
    rd_sweep,
    simulated_speedups,
    time_breakdown,
)
from repro.compressors import SperrCompressor, SzLikeCompressor
from repro.datasets import lighthouse, spectral_field


@pytest.fixture(scope="module")
def field():
    return spectral_field((20, 20, 20), slope=3.0, seed=3)


class TestQSweep:
    def test_breakdown_consistency(self, field):
        pts = q_sweep(field, idx=14, q_factors=(1.0, 1.5, 2.5))
        for p in pts:
            assert p.max_err <= p.tolerance  # guarantee at every q
            assert p.coeff_bpp + p.outlier_bpp <= p.total_bpp  # header overhead
            assert 0 <= p.outlier_fraction < 1

    def test_outliers_grow_with_q(self, field):
        """Sec. III-C / Fig. 2: larger q -> lower SPECK quality -> more
        outliers and lower coefficient cost."""
        pts = q_sweep(field, idx=14, q_factors=(1.0, 2.0, 3.0))
        assert pts[0].n_outliers <= pts[1].n_outliers <= pts[2].n_outliers
        assert pts[0].coeff_bpp >= pts[1].coeff_bpp >= pts[2].coeff_bpp

    def test_psnr_decreases_with_q(self, field):
        """Fig. 3 bottom row: average error only gets worse with q."""
        pts = q_sweep(field, idx=14, q_factors=(1.0, 1.5, 2.0, 3.0))
        psnrs = [p.psnr_db for p in pts]
        assert all(a >= b - 0.2 for a, b in zip(psnrs, psnrs[1:]))


class TestRdSweep:
    def test_rd_point_fields(self, field):
        p = rd_point(SperrCompressor(), field, idx=10)
        assert p.satisfied
        assert p.bpp > 0 and np.isfinite(p.gain)
        assert p.max_err <= p.tolerance

    def test_sweep_monotone_bpp(self, field):
        pts = rd_sweep(SzLikeCompressor(), field, [6, 12, 18])
        assert len(pts) == 3
        assert pts[0].bpp < pts[1].bpp < pts[2].bpp
        assert pts[0].psnr_db < pts[1].psnr_db < pts[2].psnr_db


class TestTimeBreakdown:
    def test_stages_sum(self, field):
        rows = time_breakdown(field, [8, 16])
        assert len(rows) == 2
        for r in rows:
            assert r.total == pytest.approx(
                r.transform + r.speck + r.locate + r.outlier_code
            )
            assert r.speck >= 0


class TestScalingModel:
    def test_lpt_exact_cases(self):
        assert lpt_makespan([1.0, 1.0, 1.0, 1.0], 2) == pytest.approx(2.0)
        assert lpt_makespan([4.0, 1.0, 1.0], 2) == pytest.approx(4.0)
        assert lpt_makespan([1.0] * 8, 100) == pytest.approx(1.0)

    def test_speedup_bounded_by_chunk_count(self):
        times = [1.0] * 8
        s = simulated_speedups(times, overhead=0.0, workers=[1, 4, 8, 64])
        assert s[0] == pytest.approx(1.0)
        assert s[1] == pytest.approx(4.0)
        assert s[2] == pytest.approx(8.0)
        assert s[3] == pytest.approx(8.0)  # plateau at the chunk count

    def test_overhead_limits_speedup(self):
        s = simulated_speedups([1.0] * 16, overhead=1.0, workers=[16])
        assert s[0] < 16.0


class TestOutlierStudies:
    def test_outlier_map_and_randomness(self):
        img = lighthouse((96, 128))
        om = outlier_map(img, idx=9, q_factor=1.5)
        assert 0 < om.fraction < 0.5
        assert om.mask().sum() == om.positions.size
        ratio = clark_evans_ratio(om.positions, om.shape)
        assert 0.7 < ratio < 1.4  # near-CSR: no meaningful clustering

    def test_more_q_more_outliers(self):
        img = lighthouse((64, 96))
        frac = [outlier_map(img, 9, qf).fraction for qf in (1.3, 1.5, 1.7)]
        assert frac[0] <= frac[1] <= frac[2]

    def test_fig11_comparison(self, field):
        cmp_ = compare_outlier_coding(field, idx=14, abbrev="test")
        assert cmp_.n_outliers > 0
        assert 4.0 < cmp_.sperr_bits_per_outlier < 18.0
        assert cmp_.sz_bits_per_outlier > 0


class TestTableII:
    def test_covers_paper_grid(self):
        abbrevs = {e.abbrev for e in TABLE_II}
        for expected in ("CH4-20", "Visc-40", "QMC-20", "Nyx-20", "VX3-20"):
            assert expected in abbrevs
        assert len(TABLE_II) == 15

    def test_load_entry(self):
        data, tol = load_entry(TABLE_II[0], shape=(12, 12, 12))
        assert data.shape == (12, 12, 12)
        assert tol == pytest.approx((data.max() - data.min()) / 2**20)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 2e-7]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "2e-07" in out or "2.000e-07" in out

    def test_format_series(self):
        s = format_series("sperr", [1, 2], [0.5, 0.25])
        assert s.startswith("sperr:")
        assert "(1, 0.5)" in s

    def test_banner(self):
        assert "Fig. 2" in banner("Fig. 2")
