"""Golden-stream compatibility: every legacy lossless tag stays decodable.

The fixtures under ``tests/data/`` were produced by the pre-vectorization
encoders (tags 1-5) and by the first range-coder release (tag 6), and are
pinned byte-for-byte via SHA-256.  The current decoders must reproduce
the golden input from each of them forever — these files are the contract
that lets old containers decode on new trees.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro import lossless

DATA = Path(__file__).parent / "data"

#: fixture file -> (expected sha256, expected leading method tag).
#: Regenerating a fixture is a format break and must be a deliberate,
#: reviewed change — hence the hard pins.
FIXTURES = {
    "lossless_rle.bin": (
        "2086383aaba2cb097f93dd4ec2dc0d72768f36cd15f37189e85edad95e94275b", 1,
    ),
    "lossless_huffman.bin": (
        "262aac92e89177128385260b8d3e270fa6fcc831eaecfcbd12a54685dc957ac9", 2,
    ),
    "lossless_rle_huffman.bin": (
        "e69d0d02f73107b08959f86cbde74c85ac5f88e374762f2e7b8e158b5f8b6319", 3,
    ),
    "lossless_lz77.bin": (
        "0ff6ae379a651d5ef6280b882d92c486b9d64b01b7c850066e39675764ae576a", 4,
    ),
    "lossless_ac.bin": (
        "d18d761ab7701985f26b39352081a60d8bdd367102108458d51383472bf9b2f7", 5,
    ),
    "lossless_rc.bin": (
        "04ed36a4b929ed555462403d249539aeff24597a0962bfe3c91e0be8b9d112a7", 6,
    ),
}

GOLDEN_INPUT_SHA = "a7f813014640dfa4d19401bbaf45171261b9727e1d0ef33a2fff1ecb2b586bb2"


@pytest.fixture(scope="module")
def golden_input() -> bytes:
    raw = (DATA / "lossless_golden_input.bin").read_bytes()
    assert hashlib.sha256(raw).hexdigest() == GOLDEN_INPUT_SHA
    return raw


class TestGoldenStreams:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_fixture_pinned(self, name):
        payload = (DATA / name).read_bytes()
        sha, tag = FIXTURES[name]
        assert hashlib.sha256(payload).hexdigest() == sha, (
            f"{name} changed on disk - legacy fixtures must never be regenerated"
        )
        assert payload[0] == tag

    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_fixture_decodes_byte_identically(self, name, golden_input):
        payload = (DATA / name).read_bytes()
        assert lossless.decompress(payload) == golden_input

    def test_rc_encode_is_deterministic(self, golden_input):
        """Tag 6 is static (no adaptive state), so encoding the golden
        input today must reproduce the pinned fixture exactly."""
        assert lossless.compress(golden_input, method="rc") == (
            DATA / "lossless_rc.bin"
        ).read_bytes()

    def test_auto_never_emits_legacy_ac(self, golden_input):
        """``auto`` output stays within the supported-encoder tag set:
        the per-bit adaptive coder (tag 5) is decode-only now."""
        assert lossless.compress(golden_input, method="auto")[0] != 5
