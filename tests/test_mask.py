"""Unit tests for the input-hardening layer (:mod:`repro.core.mask`).

Covers the mask-code lifecycle (classify -> fill -> encode -> decode ->
apply), the degradation notes the sanitizer emits instead of raising,
and the float32 tolerance-tightening shared by every masked entry point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mask import (
    MASK_NAN,
    MASK_NEGINF,
    MASK_POSINF,
    MASK_VALID,
    apply_mask,
    classify_nonfinite,
    decode_mask,
    encode_mask,
    fill_masked,
    mask_summary,
    sanitize_array,
    tighten_pwe_for_dtype,
)
from repro.core.modes import PsnrMode, PweMode
from repro.errors import InvalidArgumentError, StreamFormatError


def masked_field(shape=(12, 12), seed=3):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    data[:4, :4] = np.nan
    data[-1, -1] = np.inf
    data[0, -1] = -np.inf
    return data


class TestClassify:
    def test_finite_input_returns_none(self):
        assert classify_nonfinite(np.zeros((5, 5))) is None

    def test_codes_match_predicates(self):
        data = masked_field()
        codes = classify_nonfinite(data)
        assert codes.dtype == np.uint8
        assert np.array_equal(codes == MASK_NAN, np.isnan(data))
        assert np.array_equal(codes == MASK_POSINF, np.isposinf(data))
        assert np.array_equal(codes == MASK_NEGINF, np.isneginf(data))
        assert np.array_equal(codes == MASK_VALID, np.isfinite(data))


class TestFill:
    def test_fill_is_finite_and_smooth(self):
        data = masked_field()
        codes = classify_nonfinite(data)
        filled, notes = fill_masked(data, codes)
        assert np.isfinite(filled).all()
        # Valid samples pass through untouched.
        valid = codes == MASK_VALID
        assert np.array_equal(filled[valid], data[valid])
        # Neighbor-aware fill stays inside the valid samples' range
        # (diffusion cannot overshoot the boundary values).
        lo, hi = data[valid].min(), data[valid].max()
        assert filled.min() >= lo - 1e-12 and filled.max() <= hi + 1e-12

    def test_all_masked_falls_back_with_note(self):
        data = np.full((4, 4), np.nan)
        codes = classify_nonfinite(data)
        filled, notes = fill_masked(data, codes)
        assert np.isfinite(filled).all()
        assert any(n.kind == "all_masked" for n in notes)


class TestEncodeDecode:
    def test_roundtrip_exact(self):
        codes = classify_nonfinite(masked_field())
        blob = encode_mask(codes)
        back = decode_mask(blob, codes.size)
        assert np.array_equal(back, codes.ravel())

    def test_rle_is_compact_on_block_masks(self):
        codes = np.zeros((64, 64), dtype=np.uint8)
        codes[:32] = MASK_NAN  # one huge run each way
        blob = encode_mask(codes)
        assert len(blob) < 128  # far below the 4096-sample bitmap

    def test_wrong_npoints_rejected(self):
        codes = classify_nonfinite(masked_field())
        blob = encode_mask(codes)
        with pytest.raises(StreamFormatError):
            decode_mask(blob, codes.size + 1)

    def test_damaged_blob_rejected(self):
        blob = encode_mask(classify_nonfinite(masked_field()))
        with pytest.raises(Exception) as exc_info:
            decode_mask(blob[: len(blob) // 2], 144)
        from repro.errors import ReproError

        assert isinstance(exc_info.value, ReproError)


class TestApply:
    def test_apply_restores_pattern(self):
        data = masked_field()
        codes = classify_nonfinite(data)
        out = np.zeros_like(data)
        apply_mask(out, codes)
        assert np.array_equal(np.isnan(out), np.isnan(data))
        assert np.array_equal(np.isposinf(out), np.isposinf(data))
        assert np.array_equal(np.isneginf(out), np.isneginf(data))

    def test_apply_accepts_flat_codes(self):
        data = masked_field()
        codes = classify_nonfinite(data).ravel()
        out = np.zeros_like(data)
        apply_mask(out, codes)
        assert np.isnan(out[0, 0])

    def test_size_mismatch_raises(self):
        with pytest.raises(StreamFormatError):
            apply_mask(np.zeros((3, 3)), np.zeros(4, dtype=np.uint8))


class TestSanitize:
    def test_finite_input_is_identity(self):
        data = np.linspace(0, 1, 64).reshape(8, 8)
        clean, codes, notes = sanitize_array(data)
        assert codes is None
        assert clean is data
        assert notes == []

    def test_masked_input_notes_and_counts(self):
        clean, codes, notes = sanitize_array(masked_field())
        assert np.isfinite(clean).all()
        counts = mask_summary(codes)
        assert counts["masked"] == 18 and counts["nan"] == 16
        assert counts["pos_inf"] == 1 and counts["neg_inf"] == 1
        assert any(n.kind == "masked_input" for n in notes)

    def test_constant_field_note(self):
        _, _, notes = sanitize_array(np.full((6, 6), 3.25))
        assert any(n.kind == "constant_field" for n in notes)

    def test_denormal_heavy_note(self):
        data = np.full((8, 8), 1e-310)
        _, _, notes = sanitize_array(data)
        assert any(n.kind == "denormal_heavy" for n in notes)

    def test_float32_fill_stays_float32(self):
        data = masked_field().astype(np.float32)
        clean, codes, _ = sanitize_array(data)
        assert clean.dtype == np.float32


class TestTightenPwe:
    def test_float64_untouched(self):
        mode = PweMode(1e-3)
        data = np.ones((4, 4))
        assert tighten_pwe_for_dtype(mode, data) is mode

    def test_float32_tightens_below_tolerance(self):
        mode = PweMode(1e-3)
        data = np.full((4, 4), 100.0, dtype=np.float32)
        out = tighten_pwe_for_dtype(mode, data)
        assert 0 < out.tolerance < mode.tolerance
        assert out.q_factor == mode.q_factor

    def test_sub_ulp_tolerance_rejected(self):
        data = np.full((4, 4), 1e6, dtype=np.float32)
        ulp = 1e6 * 2.0**-23
        with pytest.raises(InvalidArgumentError):
            tighten_pwe_for_dtype(PweMode(0.4 * ulp), data)

    def test_non_pwe_modes_pass_through(self):
        mode = PsnrMode(60.0)
        data = np.ones((4, 4), dtype=np.float32)
        assert tighten_pwe_for_dtype(mode, data) is mode
