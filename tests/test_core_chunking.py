"""Chunk planning, splitting, and reassembly (paper Sec. III-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chunking import Chunk, assemble, plan_chunks, split
from repro.errors import InvalidArgumentError


class TestPlanChunks:
    def test_single_chunk_when_none(self):
        chunks = plan_chunks((10, 20), None)
        assert len(chunks) == 1
        assert chunks[0].shape == (10, 20)

    def test_exact_tiling(self):
        chunks = plan_chunks((64, 64, 64), 32)
        assert len(chunks) == 8
        assert all(c.shape == (32, 32, 32) for c in chunks)

    def test_non_divisible_dimensions(self):
        """The paper: chunk dims need not divide the volume dims."""
        chunks = plan_chunks((70, 64), (32, 32))
        # 70 = 32 + 38 (the 6-wide sliver merges into the second chunk)
        starts = sorted({c.bounds[0] for c in chunks})
        assert starts == [(0, 32), (32, 70)]

    def test_small_remainder_merged(self):
        bounds = [c.bounds[0] for c in plan_chunks((33,), (16,))]
        # 33 -> 16 + 17 (1-wide remainder merged)
        assert bounds == [(0, 16), (16, 33)]

    def test_large_remainder_kept(self):
        bounds = [c.bounds[0] for c in plan_chunks((40,), (16,))]
        assert bounds == [(0, 16), (16, 32), (32, 40)]

    def test_chunk_larger_than_volume(self):
        chunks = plan_chunks((10,), (64,))
        assert len(chunks) == 1
        assert chunks[0].shape == (10,)

    def test_tiles_cover_volume_exactly(self):
        shape = (37, 23, 11)
        chunks = plan_chunks(shape, (16, 8, 4))
        covered = np.zeros(shape, dtype=int)
        for c in chunks:
            covered[c.slices()] += 1
        assert np.all(covered == 1)

    def test_invalid_args_rejected(self):
        with pytest.raises(InvalidArgumentError):
            plan_chunks((10,), (0,))
        with pytest.raises(InvalidArgumentError):
            plan_chunks((10, 10), (4,))


class TestSplitAssemble:
    def test_round_trip(self, rng):
        data = rng.standard_normal((30, 18))
        chunks = plan_chunks(data.shape, (16, 7))
        parts = split(data, chunks)
        out = assemble(data.shape, chunks, parts)
        np.testing.assert_array_equal(out, data)

    def test_parts_are_contiguous_copies(self, rng):
        data = rng.standard_normal((8, 8))
        chunks = plan_chunks(data.shape, (4, 4))
        parts = split(data, chunks)
        parts[0][0, 0] = 999.0
        assert data[0, 0] != 999.0
        assert all(p.flags.c_contiguous for p in parts)

    def test_wrong_part_shape_rejected(self, rng):
        data = rng.standard_normal((8,))
        chunks = plan_chunks(data.shape, (4,))
        with pytest.raises(InvalidArgumentError):
            assemble(data.shape, chunks, [np.zeros(4), np.zeros(3)])

    def test_count_mismatch_rejected(self):
        chunks = plan_chunks((8,), (4,))
        with pytest.raises(InvalidArgumentError):
            assemble((8,), chunks, [np.zeros(4)])

    def test_chunk_size_property(self):
        c = Chunk(bounds=((0, 4), (2, 5)))
        assert c.shape == (4, 3)
        assert c.size == 12
