"""ZFP-like baseline: transform, negabinary, block codec, modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.zfplike import (
    ZfpLikeCompressor,
    from_negabinary,
    fwd_lift,
    inv_lift,
    permutation,
    to_negabinary,
)
from repro.compressors.zfplike.zfp import (
    BitWriter,
    _blockify,
    _encode_block,
    _encode_blocks_vectorized,
    _unblockify,
)
from repro.compressors.zfplike.transform import block_exponents
from repro.core.plans import zfp_scan_order
from repro.core.modes import PweMode, SizeMode
from repro.errors import InvalidArgumentError


class TestTransform:
    @pytest.mark.parametrize("nd", [1, 2, 3])
    def test_lift_nearly_invertible(self, nd, rng):
        """zfp's integer lift drops a few LSBs by design; at 2^50 scale
        the round-trip error must stay within a few dozen units."""
        b = rng.integers(-(2**50), 2**50, size=(32,) + (4,) * nd).astype(np.int64)
        c = b.copy()
        fwd_lift(c)
        d = c.copy()
        inv_lift(d)
        assert np.abs(d - b).max() < 64

    @pytest.mark.parametrize("nd", [1, 2, 3])
    def test_lift_never_overflows(self, nd, rng):
        b = rng.integers(-(2**57), 2**57, size=(16,) + (4,) * nd).astype(np.int64)
        c = b.copy()
        fwd_lift(c)
        assert np.abs(c).max() < 2**60  # within the guard-bit headroom

    def test_lift_decorrelates_smooth_block(self):
        ramp = np.arange(64, dtype=np.int64).reshape(1, 4, 4, 4) * (1 << 40)
        c = ramp.copy()
        fwd_lift(c)
        flat = np.abs(c.reshape(-1)[permutation(3)])
        # energy concentrates in the leading (low-sequency) coefficients
        assert flat[:8].sum() > 10 * flat[8:].sum()

    def test_negabinary_round_trip(self, rng):
        i = rng.integers(-(2**60), 2**60, size=1000).astype(np.int64)
        assert np.array_equal(from_negabinary(to_negabinary(i)), i)

    def test_negabinary_sign_free(self):
        u = to_negabinary(np.array([-5, 5], dtype=np.int64))
        assert np.all(u > 0)

    @pytest.mark.parametrize("nd", [1, 2, 3])
    def test_permutation_is_bijective(self, nd):
        p = permutation(nd)
        assert sorted(p.tolist()) == list(range(4**nd))

    def test_permutation_orders_by_sequency(self):
        p = permutation(2)
        coords = np.indices((4, 4)).reshape(2, -1).T
        degrees = coords[p].sum(axis=1)
        assert np.all(np.diff(degrees) >= 0)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(InvalidArgumentError):
            fwd_lift(np.zeros((2, 4), dtype=np.float64))


class TestBlockify:
    @pytest.mark.parametrize("shape", [(8,), (7,), (8, 12), (9, 5), (8, 8, 8), (6, 7, 9)])
    def test_round_trip(self, shape, rng):
        data = rng.standard_normal(shape)
        blocks, padded, grid = _blockify(data)
        assert blocks.shape[1:] == (4,) * len(shape)
        out = _unblockify(blocks, shape, padded, grid)
        np.testing.assert_array_equal(out, data)


class TestZfpLikeCompressor:
    @pytest.mark.parametrize("idx", [8, 16, 24])
    def test_accuracy_mode_bound(self, idx, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**idx
        c = ZfpLikeCompressor()
        recon = c.decompress(c.compress(smooth_field, PweMode(t)))
        assert np.abs(recon - smooth_field).max() <= t

    def test_accuracy_mode_rough_field(self, rough_field):
        t = (rough_field.max() - rough_field.min()) / 2**15
        c = ZfpLikeCompressor()
        recon = c.decompress(c.compress(rough_field, PweMode(t)))
        assert np.abs(recon - rough_field).max() <= t

    @pytest.mark.parametrize("bpp", [1.0, 4.0, 16.0])
    def test_fixed_rate_hits_budget(self, bpp, smooth_field):
        c = ZfpLikeCompressor()
        payload = c.compress(smooth_field, SizeMode(bpp=bpp))
        actual = 8 * len(payload) / smooth_field.size
        assert actual <= bpp * 1.05 + 0.2  # header amortized
        recon = c.decompress(payload)
        assert recon.shape == smooth_field.shape

    def test_more_rate_less_error(self, smooth_field):
        c = ZfpLikeCompressor()
        errs = []
        for bpp in (2.0, 8.0, 16.0):
            recon = c.decompress(c.compress(smooth_field, SizeMode(bpp=bpp)))
            errs.append(float(np.sqrt(np.mean((recon - smooth_field) ** 2))))
        assert errs[0] > errs[1] > errs[2]

    @pytest.mark.parametrize("shape", [(40,), (18, 22), (9, 6, 11)])
    def test_all_ranks(self, shape, rng):
        data = rng.standard_normal(shape).cumsum(axis=-1)
        t = (data.max() - data.min()) / 2**12
        c = ZfpLikeCompressor()
        recon = c.decompress(c.compress(data, PweMode(t)))
        assert recon.shape == shape
        assert np.abs(recon - data).max() <= t

    def test_zero_blocks_cheap(self):
        data = np.zeros((16, 16, 16))
        data[0, 0, 0] = 1.0
        c = ZfpLikeCompressor()
        payload = c.compress(data, PweMode(1e-6))
        # all-zero blocks cost one bit each
        assert 8 * len(payload) / data.size < 1.0
        recon = c.decompress(payload)
        assert np.abs(recon - data).max() <= 1e-6

    def test_constant_field(self):
        data = np.full((8, 8, 8), -3.25)
        c = ZfpLikeCompressor()
        recon = c.decompress(c.compress(data, PweMode(1e-9)))
        assert np.abs(recon - data).max() <= 1e-9

    def test_nan_rejected(self):
        data = np.full((8, 8), np.nan)
        with pytest.raises(InvalidArgumentError):
            ZfpLikeCompressor().compress(data, PweMode(0.1))


class TestVectorizedEncoderIdentity:
    """The scatter-form block coder (with its budget-exhaustion plane
    pruning) must stay bit-identical to the reference per-block
    ``BitWriter`` coder in every mode, including budgets that cut off
    mid-plane."""

    @staticmethod
    def _coder_inputs(data, nd, rng_seed=0):
        from repro.compressors.zfplike.zfp import _SCALE_EXP
        from repro.compressors.zfplike import fwd_lift, to_negabinary

        blocks, _, _ = _blockify(np.asarray(data, dtype=np.float64))
        nb = blocks.shape[0]
        flat = blocks.reshape(nb, -1)
        maxabs = np.abs(flat).max(axis=1)
        exps = block_exponents(maxabs)
        nonzero = maxabs > 0
        scale = np.exp2((_SCALE_EXP - exps).astype(np.float64))
        iblocks = np.rint(flat * scale[:, None]).astype(np.int64).reshape(blocks.shape)
        fwd_lift(iblocks)
        perm, _ = zfp_scan_order(nd)
        u = to_negabinary(iblocks.reshape(nb, -1)[:, perm])
        return u, exps, nonzero

    @staticmethod
    def _serial(u, exps, nonzero, kmins, max_bits):
        writer = BitWriter()
        for b in range(u.shape[0]):
            _encode_block(
                writer, u[b], int(exps[b]), bool(nonzero[b]),
                int(kmins[b]), max_bits,
            )
        return writer.getvalue(), writer.nbits

    @pytest.mark.parametrize("nd", [1, 2, 3])
    @pytest.mark.parametrize("max_bits", [None, 64, 200, 1000])
    def test_matches_reference_coder(self, nd, max_bits, rng):
        data = rng.standard_normal((12,) * nd).cumsum(axis=-1)
        u, exps, nonzero = self._coder_inputs(data, nd)
        kmins = (
            np.zeros(u.shape[0], dtype=np.int64)
            if max_bits is not None
            else np.full(u.shape[0], 40, dtype=np.int64)
        )
        vec = _encode_blocks_vectorized(u, exps, nonzero, kmins, max_bits)
        ref = self._serial(u, exps, nonzero, kmins, max_bits)
        assert vec == ref

    def test_budget_exhaustion_pruning_identical(self, rng):
        # Tight budgets starve most blocks early: the vectorized coder's
        # plane-loop break must not change a single emitted bit.
        data = rng.standard_normal((16, 16)).cumsum(axis=0)
        u, exps, nonzero = self._coder_inputs(data, 2)
        for max_bits in (16, 24, 40, 96):
            kmins = np.zeros(u.shape[0], dtype=np.int64)
            vec = _encode_blocks_vectorized(u, exps, nonzero, kmins, max_bits)
            ref = self._serial(u, exps, nonzero, kmins, max_bits)
            assert vec == ref, f"diverged at max_bits={max_bits}"

    def test_zero_and_live_blocks_mixed(self, rng):
        data = rng.standard_normal((24,)).cumsum()
        data[:8] = 0.0  # two all-zero blocks alongside live ones
        u, exps, nonzero = self._coder_inputs(data, 1)
        kmins = np.full(u.shape[0], 30, dtype=np.int64)
        assert _encode_blocks_vectorized(
            u, exps, nonzero, kmins, None
        ) == self._serial(u, exps, nonzero, kmins, None)
