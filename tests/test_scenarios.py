"""The scenario registry and the codec x scenario scorecard harness.

The registry is declarative test data (name -> builder); the scorecard
is the robustness gate built on it.  Tier-1 runs only the smoke subset
— the full 42 x 7 matrix runs in the opt-in CI job.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import Scorecard, format_scorecard, run_scorecard
from repro.datasets import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
)
from repro.errors import InvalidArgumentError


class TestRegistry:
    def test_registry_shape(self):
        # 2 dtypes x 3 ranks x 7 variants.
        assert len(SCENARIOS) == 42
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name

    def test_smoke_subset_is_small_and_masked(self):
        assert 4 <= len(SMOKE_SCENARIOS) <= 10
        assert all(s.smoke for s in SMOKE_SCENARIOS.values())
        assert any("masked" in s.tags for s in SMOKE_SCENARIOS.values())

    def test_builders_are_deterministic(self):
        for scenario in SMOKE_SCENARIOS.values():
            a, b = scenario.build(), scenario.build()
            assert a.dtype == np.dtype(scenario.dtype)
            assert a.shape == scenario.shape
            np.testing.assert_array_equal(a, b)

    def test_masked_scenarios_carry_nonfinite(self):
        for scenario in list_scenarios(tags={"masked"}):
            data = scenario.build()
            assert not np.isfinite(data).all()
            assert np.isfinite(data).any()  # but never fully masked

    def test_constant_scenarios_are_constant(self):
        for scenario in list_scenarios(tags={"constant"}):
            data = scenario.build()
            assert float(data.min()) == float(data.max())

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(InvalidArgumentError):
            get_scenario("no-such-scenario")

    def test_list_scenarios_filters(self):
        masked_3d = list_scenarios(tags={"masked", "3d"})
        assert masked_3d
        for s in masked_3d:
            assert {"masked", "3d"} <= s.tags

    def test_scenarios_are_frozen(self):
        scenario = next(iter(SCENARIOS.values()))
        with pytest.raises(Exception):
            scenario.name = "mutated"  # type: ignore[misc]


class TestScorecard:
    @pytest.fixture(scope="class")
    def smoke(self):
        return run_scorecard(smoke_only=True)

    def test_smoke_matrix_passes(self, smoke):
        from repro.compressors import ALL_COMPRESSORS

        assert isinstance(smoke, Scorecard)
        assert smoke.n_failed == 0, format_scorecard(smoke)
        # every registry codec plus the adaptive-pipeline row
        assert len(smoke.cells) == len(SMOKE_SCENARIOS) * (
            len(ALL_COMPRESSORS) + 1
        )

    def test_cells_carry_metrics(self, smoke):
        for cell in smoke.cells:
            assert cell.passed
            assert cell.ratio is None or cell.ratio > 0
            assert cell.seconds >= 0

    def test_to_dict_is_json_serializable(self, smoke):
        blob = json.dumps(smoke.to_dict())
        back = json.loads(blob)
        assert back["n_cells"] == len(smoke.cells)
        assert back["n_failed"] == 0

    def test_format_scorecard_mentions_every_codec(self, smoke):
        text = format_scorecard(smoke)
        for codec in (
            "sperr",
            "sz-like",
            "szx-like",
            "zfp-like",
            "tthresh-like",
            "mgard-like",
            "adaptive",
        ):
            assert codec in text

    def test_adaptive_rows_carry_routing_counts(self, smoke):
        adaptive = [c for c in smoke.cells if c.codec == "adaptive"]
        assert adaptive
        for cell in adaptive:
            assert cell.routing, f"no routing counts on {cell.scenario}"
            assert set(cell.routing) <= {"sperr", "szx", "stored"}
            assert sum(cell.routing.values()) >= 1
        # registry codecs never report routing
        assert all(
            c.routing is None for c in smoke.cells if c.codec != "adaptive"
        )

    def test_mixed_scenario_in_smoke_subset(self):
        assert any("mixed" in s.tags for s in SMOKE_SCENARIOS.values())

    def test_codec_filter(self):
        card = run_scorecard(
            smoke_only=True,
            codecs=["sperr"],
            scenarios=[next(iter(SMOKE_SCENARIOS.values()))],
        )
        assert len(card.cells) == 1
        assert card.cells[0].codec == "sperr"

    def test_unknown_codec_rejected(self):
        with pytest.raises(InvalidArgumentError):
            run_scorecard(smoke_only=True, codecs=["lz4"])
