"""Batched-vs-looped byte identity and masked-lane behaviour.

The batch executor's contract (DESIGN + docs/architecture.md "Batched
execution") is that stacking same-shaped chunks through the wavelet /
quant / SPECK / outlier stages changes *nothing* observable: the same
bitstreams, the same container bytes, the same obs counters — only the
wall time.  These tests pin that contract three ways:

* a Hypothesis sweep over random shapes (prime dimensions included),
  chunk shapes and modes, comparing ``executor="batch"`` against
  ``executor="serial"`` payloads byte for byte;
* direct stacked-encoder checks — :class:`~repro.speck.batched.
  BatchedSpeckEncoder` against the serial :func:`repro.speck.codec.
  encode` — covering the masked-lane mechanics the end-to-end sweep
  cannot isolate (per-lane budgets, lanes joining at later planes,
  compaction after mass early exit);
* obs counter equivalence: a traced batch compress accumulates the same
  counter totals as a traced serial compress.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PweMode, SizeMode, compress, decompress
from repro.speck.batched import BatchedSpeckEncoder, encode_batch
from repro.speck.codec import encode as serial_encode
from repro import obs


def _field(shape: tuple[int, ...], seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    axes = np.ix_(*[np.linspace(0.0, 2.5 * np.pi, s) for s in shape])
    smooth = np.ones(shape)
    for a in axes:
        smooth = smooth * np.sin(a + 0.3)
    return smooth + 0.1 * rng.standard_normal(shape)


# ---------------------------------------------------------------------------
# End-to-end: batch executor == serial executor, byte for byte.


@st.composite
def _volumes(draw):
    ndim = draw(st.integers(1, 3))
    # Prime extents (7, 11, 13...) exercise uneven chunk grids and odd
    # wavelet lengths; powers of two exercise the clean path.
    sizes = draw(
        st.lists(
            st.sampled_from([4, 7, 8, 11, 13, 16, 23]),
            min_size=ndim,
            max_size=ndim,
        )
    )
    chunk = draw(st.sampled_from([None, 4, 8, (5,)]))
    if isinstance(chunk, tuple):
        chunk = chunk * ndim
    mode = draw(
        st.one_of(
            st.sampled_from([PweMode(1e-2), PweMode(1e-4)]),
            st.sampled_from([SizeMode(4.0), SizeMode(1.0)]),
        )
    )
    seed = draw(st.integers(0, 2**16))
    return tuple(sizes), chunk, mode, seed


class TestBatchedExecutorIdentity:
    @settings(max_examples=25, deadline=None)
    @given(_volumes())
    def test_batch_matches_serial_payload(self, case):
        shape, chunk, mode, seed = case
        data = _field(shape, seed)
        serial = compress(data, mode, chunk_shape=chunk, executor="serial")
        batch = compress(data, mode, chunk_shape=chunk, executor="batch")
        assert batch.payload == serial.payload
        np.testing.assert_array_equal(
            decompress(batch.payload), decompress(serial.payload)
        )

    def test_single_chunk_group_routes_serially_and_matches(self):
        # A volume whose chunk grid degenerates to one chunk per shape
        # group (every group a singleton) must still be byte-identical.
        data = _field((13, 13), seed=5)
        mode = PweMode(1e-3)
        serial = compress(data, mode, chunk_shape=13, executor="serial")
        batch = compress(data, mode, chunk_shape=13, executor="batch")
        assert batch.payload == serial.payload

    def test_ragged_edge_chunks_mix_groups(self):
        # 23 = 8 + 8 + 7: interior chunks batch together, edge chunks
        # form their own shape groups (some singleton).
        data = _field((23, 23), seed=9)
        mode = PweMode(1e-3)
        serial = compress(data, mode, chunk_shape=8, executor="serial")
        batch = compress(data, mode, chunk_shape=8, executor="batch")
        assert batch.payload == serial.payload


# ---------------------------------------------------------------------------
# Stacked SPECK lanes: identity + masked-lane early-exit mechanics.


def _random_lanes(seed, n_lanes, shape, zero_lane=None, scale_spread=False):
    rng = np.random.default_rng(seed)
    mags = rng.integers(0, 1 << 12, size=(n_lanes, *shape)).astype(np.uint64)
    if scale_spread:
        # Wildly different magnitudes per lane => different nmax, so
        # lanes join the stacked pass at different bitplanes.
        shifts = rng.integers(0, 30, size=n_lanes).astype(np.uint64)
        mags <<= shifts.reshape((-1,) + (1,) * len(shape))
    if zero_lane is not None:
        mags[zero_lane] = 0
    neg = rng.random(size=(n_lanes, *shape)) < 0.5
    return mags, neg


def _assert_lanes_match_serial(mags, neg, max_bits):
    batched = BatchedSpeckEncoder(mags, neg).encode(max_bits=max_bits)
    n_lanes = mags.shape[0]
    budgets = (
        [None] * n_lanes
        if max_bits is None
        else [int(b) for b in np.broadcast_to(np.asarray(max_bits), (n_lanes,))]
    )
    for lane in range(n_lanes):
        stream, nbits, stats = serial_encode(
            mags[lane], neg[lane], max_bits=budgets[lane]
        )
        assert batched[lane][0] == stream, f"lane {lane} bytes diverge"
        assert batched[lane][1] == nbits
        assert batched[lane][2] == stats


class TestStackedLaneIdentity:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 2**16),
        st.integers(4, 9),
        st.sampled_from([(8,), (16,), (4, 4), (8, 8), (3, 5), (4, 4, 4), (3, 3, 3)]),
        st.sampled_from([None, 64, 300, "per-lane"]),
    )
    def test_random_lanes_budgets_match_serial(self, seed, n_lanes, shape, budget):
        mags, neg = _random_lanes(seed, n_lanes, shape)
        if budget == "per-lane":
            budget = np.random.default_rng(seed + 1).integers(
                32, 2000, size=n_lanes
            )
        _assert_lanes_match_serial(mags, neg, budget)

    def test_lanes_join_at_different_planes(self):
        # Masked-lane start: lanes with small nmax contribute nothing
        # until the global plane descends to theirs.
        mags, neg = _random_lanes(3, 6, (4, 4), scale_spread=True)
        _assert_lanes_match_serial(mags, neg, None)

    def test_all_zero_lane_alongside_live_lanes(self):
        mags, neg = _random_lanes(4, 5, (4, 4), zero_lane=2)
        _assert_lanes_match_serial(mags, neg, None)

    def test_budget_exhaustion_stops_lane_early(self):
        # One starved lane must stop exactly where the serial encoder
        # stops (budget checked after each refinement pass), while the
        # other lanes keep coding to the last plane.
        mags, neg = _random_lanes(5, 4, (8, 8))
        budgets = np.array([96, 100_000, 100_000, 100_000])
        batched = BatchedSpeckEncoder(mags, neg).encode(max_bits=budgets)
        _assert_lanes_match_serial(mags, neg, budgets)
        assert batched[0][1] <= 96
        assert batched[1][1] > batched[0][1]

    def test_mass_early_exit_triggers_compaction(self):
        # All lanes but one starve: live slots fall below the compaction
        # fraction, the stacked arrays re-base, and the surviving lane
        # must still finish byte-identically.
        mags, neg = _random_lanes(6, 8, (8, 8))
        budgets = np.full(8, 80, dtype=np.int64)
        budgets[5] = 10**9
        _assert_lanes_match_serial(mags, neg, budgets)

    def test_encode_batch_routes_large_lanes_serially(self):
        # Lanes above the stacking pixel cap take the per-lane reference
        # path inside encode_batch; identity must hold either way.
        mags, neg = _random_lanes(7, 4, (16, 16, 16))  # 4096 px > cap
        out = encode_batch(mags, neg, max_bits=None)
        for lane in range(4):
            stream, nbits, stats = serial_encode(mags[lane], neg[lane])
            assert out[lane][0] == stream
            assert out[lane][1] == nbits


# ---------------------------------------------------------------------------
# SZx fast-tier lanes: stacked encode == per-chunk encode, byte for byte.


class TestSzxLaneIdentity:
    """The szx tier reuses the stacked-lane contract: encoding many
    chunks through one kernel pass must produce exactly the streams the
    one-chunk entry point produces, so mixed-codec containers are
    reproducible whichever executor built them."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, 2**16),
        st.integers(1, 6),
        st.sampled_from([1e-1, 1e-3, 1e-6]),
    )
    def test_encode_chunks_matches_encode_chunk(self, seed, n_lanes, tol):
        from repro.compressors.szxlike.codec import encode_chunk, encode_chunks

        rng = np.random.default_rng(seed)
        arrays = []
        for i in range(n_lanes):
            kind = i % 3
            size = int(rng.integers(1, 700))
            if kind == 0:
                arrays.append(np.full(size, float(rng.normal())))
            elif kind == 1:
                arrays.append(np.linspace(0, rng.normal(), size))
            else:
                arrays.append(rng.normal(size=size) * 10.0)
        batched = encode_chunks(arrays, tol)
        for arr, stream in zip(arrays, batched):
            assert encode_chunk(arr, tol) == stream

    @pytest.mark.parametrize("codec", ["fast", "adaptive"])
    def test_fast_payloads_identical_across_executors(self, codec):
        data = _field((23, 23), seed=17)
        mode = PweMode(1e-3)
        serial = compress(data, mode, chunk_shape=8, executor="serial", codec=codec)
        batch = compress(data, mode, chunk_shape=8, executor="batch", codec=codec)
        assert batch.payload == serial.payload
        np.testing.assert_array_equal(
            decompress(batch.payload), decompress(serial.payload)
        )


# ---------------------------------------------------------------------------
# Observability: the batched path reports the same counters.


class TestObsCounterEquivalence:
    @pytest.mark.parametrize(
        "mode", [PweMode(1e-3), SizeMode(2.0)], ids=["pwe", "size"]
    )
    def test_counters_match_serial(self, mode):
        data = _field((16, 16, 16), seed=11)
        with obs.trace("serial") as tracer:
            compress(data, mode, chunk_shape=8, executor="serial")
        serial_counters = tracer.report().counters
        with obs.trace("batch") as tracer:
            compress(data, mode, chunk_shape=8, executor="batch")
        batch_counters = tracer.report().counters
        assert batch_counters == serial_counters
        # The totals are not vacuous: SPECK coded real bits.
        assert serial_counters.get("speck.bits", 0) > 0
