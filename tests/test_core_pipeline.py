"""Per-chunk SPERR pipeline: compression, reports, stream format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitstream import HEADER_SIZE, ChunkHeader, ChunkParams
from repro.core.modes import PweMode, SizeMode
from repro.core.pipeline import compress_chunk, decompress_chunk
from repro.errors import InvalidArgumentError, StreamFormatError


class TestCompressChunk:
    def test_pwe_round_trip(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**15
        stream, report = compress_chunk(smooth_field, PweMode(t))
        recon = decompress_chunk(stream, rank=3)
        assert np.abs(recon - smooth_field).max() <= t
        assert report.total_nbytes == len(stream)

    def test_report_accounting(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**15
        stream, report = compress_chunk(smooth_field, PweMode(t))
        assert report.q == pytest.approx(1.5 * t)
        assert report.npoints == smooth_field.size
        assert report.bpp == pytest.approx(8 * len(stream) / smooth_field.size)
        assert report.speck_bpp + report.outlier_bpp < report.bpp  # header overhead
        assert set(report.timings) == {"transform", "speck", "locate", "outlier_code"}
        assert all(v >= 0 for v in report.timings.values())

    def test_stream_layout(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**12
        stream, report = compress_chunk(smooth_field, PweMode(t))
        header = ChunkHeader.unpack(stream)
        params = ChunkParams.unpack(stream[HEADER_SIZE:])
        assert header.shape == smooth_field.shape
        assert header.pwe_mode
        assert params.tolerance == t
        expected = HEADER_SIZE + ChunkParams.SIZE + header.speck_nbytes + params.outlier_nbytes
        assert len(stream) == expected

    def test_size_mode_budget(self, rough_field):
        stream, report = compress_chunk(rough_field, SizeMode(bpp=3.0))
        assert report.bpp <= 3.0 + 0.1
        recon = decompress_chunk(stream, rank=3)
        assert recon.shape == rough_field.shape
        # more budget must give lower error
        stream2, _ = compress_chunk(rough_field, SizeMode(bpp=8.0))
        recon2 = decompress_chunk(stream2, rank=3)
        rmse = lambda a, b: np.sqrt(np.mean((a - b) ** 2))  # noqa: E731
        assert rmse(recon2, rough_field) < rmse(recon, rough_field)

    def test_outliers_present_on_rough_data(self, rough_field):
        t = (rough_field.max() - rough_field.min()) / 2**18
        _, report = compress_chunk(rough_field, PweMode(t))
        assert report.n_outliers > 0
        assert report.bits_per_outlier > 0
        assert 0 < report.outlier_fraction < 1

    def test_2d_and_1d_inputs(self, rng):
        for shape in ((40, 30), (100,)):
            data = rng.standard_normal(shape)
            t = (data.max() - data.min()) / 2**12
            stream, _ = compress_chunk(data, PweMode(t))
            recon = decompress_chunk(stream, rank=len(shape))
            assert recon.shape == shape
            assert np.abs(recon - data).max() <= t

    def test_rank_inference(self, rng):
        data = rng.standard_normal((12, 10))
        t = (data.max() - data.min()) / 2**10
        stream, _ = compress_chunk(data, PweMode(t))
        recon = decompress_chunk(stream)  # rank inferred from trailing 1s
        assert recon.shape == (12, 10)

    def test_constant_chunk(self):
        data = np.full((16, 16), 2.5)
        stream, report = compress_chunk(data, PweMode(1e-6))
        recon = decompress_chunk(stream, rank=2)
        assert np.abs(recon - data).max() <= 1e-6
        assert report.n_outliers == 0

    def test_alternate_wavelets(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**10
        for wavelet in ("cdf53", "haar"):
            stream, _ = compress_chunk(smooth_field, PweMode(t), wavelet=wavelet)
            recon = decompress_chunk(stream, rank=3)
            assert np.abs(recon - smooth_field).max() <= t

    def test_forced_levels_round_trip(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**10
        stream, _ = compress_chunk(smooth_field, PweMode(t), levels=1)
        recon = decompress_chunk(stream, rank=3)
        assert np.abs(recon - smooth_field).max() <= t

    def test_nan_rejected(self):
        data = np.zeros((8, 8))
        data[0, 0] = np.nan
        with pytest.raises(InvalidArgumentError):
            compress_chunk(data, PweMode(0.1))

    def test_4d_rejected(self, rng):
        with pytest.raises(InvalidArgumentError):
            compress_chunk(rng.standard_normal((4, 4, 4, 4)), PweMode(0.1))

    def test_truncated_stream_rejected(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**10
        stream, _ = compress_chunk(smooth_field, PweMode(t))
        with pytest.raises(StreamFormatError):
            decompress_chunk(stream[: HEADER_SIZE + 4], rank=3)
