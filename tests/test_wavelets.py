"""Wavelet substrate: lifting filters, multi-level n-D DWT, level rule."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgumentError
from repro.wavelets import (
    WaveletPlan,
    forward,
    forward_53,
    forward_97,
    forward_haar,
    inverse,
    inverse_53,
    inverse_97,
    inverse_haar,
    num_levels,
)

_FILTER_PAIRS = [
    (forward_97, inverse_97),
    (forward_53, inverse_53),
    (forward_haar, inverse_haar),
]


class TestLifting:
    @pytest.mark.parametrize("fwd,inv", _FILTER_PAIRS)
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 9, 16, 17, 63, 64, 100, 101])
    def test_perfect_reconstruction_1d(self, fwd, inv, n, rng):
        x = rng.standard_normal(n)
        np.testing.assert_allclose(inv(fwd(x)), x, atol=1e-10)

    @pytest.mark.parametrize("fwd,inv", _FILTER_PAIRS)
    def test_perfect_reconstruction_batched(self, fwd, inv, rng):
        x = rng.standard_normal((7, 33))
        np.testing.assert_allclose(inv(fwd(x)), x, atol=1e-10)

    def test_cdf97_near_orthogonal(self, rng):
        """Parseval within a few percent — the property SPERR exploits to
        equate coefficient L2 error with data L2 error (Sec. III-A)."""
        x = rng.standard_normal(4096)
        c = forward_97(x)
        ratio = np.sum(c**2) / np.sum(x**2)
        assert 0.95 < ratio < 1.06

    def test_cdf97_compacts_smooth_signal(self):
        """A smooth ramp concentrates energy in the low-pass half."""
        x = np.linspace(0.0, 1.0, 256)
        c = forward_97(x)
        low = np.sum(c[:128] ** 2)
        high = np.sum(c[128:] ** 2)
        assert low > 100 * high

    def test_haar_orthonormal(self, rng):
        x = rng.standard_normal(256)
        c = forward_haar(x)
        np.testing.assert_allclose(np.sum(c**2), np.sum(x**2), rtol=1e-12)

    @pytest.mark.parametrize("fwd", [forward_97, forward_53, forward_haar])
    def test_length_one_rejected(self, fwd):
        with pytest.raises(InvalidArgumentError):
            fwd(np.zeros(1))

    def test_mallat_layout(self, rng):
        """Output is [lowpass | highpass] with lowpass length ceil(n/2)."""
        x = rng.standard_normal(9)
        c = forward_97(x)
        assert c.shape == (9,)
        # zeroing the high-pass half must still roughly reconstruct a
        # smooth signal; zeroing the low-pass half must not
        smooth = np.linspace(0, 1, 9)
        cs = forward_97(smooth)
        low_only = cs.copy()
        low_only[5:] = 0
        assert np.abs(inverse_97(low_only) - smooth).max() < 0.1


class TestDwt:
    @pytest.mark.parametrize(
        "shape",
        [(64,), (100,), (7,), (32, 48), (17, 33), (16, 16, 16), (33, 20, 47), (8, 1, 8)],
    )
    def test_round_trip(self, shape, rng):
        x = rng.standard_normal(shape)
        c, plan = forward(x)
        np.testing.assert_allclose(inverse(c, plan), x, atol=1e-9)

    @pytest.mark.parametrize("wavelet", ["cdf97", "cdf53", "haar"])
    def test_round_trip_all_wavelets(self, wavelet, rng):
        x = rng.standard_normal((20, 24))
        c, plan = forward(x, wavelet=wavelet)
        np.testing.assert_allclose(inverse(c, plan), x, atol=1e-9)

    def test_level_rule(self):
        """min(6, floor(log2 N) - 2), Sec. III-A."""
        assert num_levels(7) == 0
        assert num_levels(8) == 1
        assert num_levels(64) == 4
        assert num_levels(256) == 6
        assert num_levels(1 << 20) == 6  # capped at six

    def test_level_rule_invalid(self):
        with pytest.raises(InvalidArgumentError):
            num_levels(0)

    def test_plan_deterministic(self):
        p1 = WaveletPlan.create((64, 32, 16))
        p2 = WaveletPlan.create((64, 32, 16))
        assert p1 == p2
        assert p1.axis_levels == (4, 3, 2)

    def test_forced_levels(self, rng):
        x = rng.standard_normal((64,))
        c, plan = forward(x, levels=2)
        assert plan.axis_levels == (2,)
        np.testing.assert_allclose(inverse(c, plan), x, atol=1e-9)

    def test_unknown_wavelet_rejected(self):
        with pytest.raises(InvalidArgumentError):
            WaveletPlan.create((16,), wavelet="db4")

    def test_4d_rejected(self, rng):
        with pytest.raises(InvalidArgumentError):
            forward(rng.standard_normal((4, 4, 4, 4)))

    def test_shape_mismatch_rejected(self, rng):
        x = rng.standard_normal((16, 16))
        c, plan = forward(x)
        with pytest.raises(InvalidArgumentError):
            inverse(c[:8], plan)

    def test_smooth_3d_energy_compaction(self):
        g = np.linspace(0, 1, 32)
        x = np.sin(2 * np.pi * g)[:, None, None] * np.cos(2 * np.pi * g)[None, :, None] + g[None, None, :]
        c, plan = forward(x)
        mags = np.sort(np.abs(c.ravel()))[::-1]
        top1pct = np.sum(mags[: mags.size // 100] ** 2)
        assert top1pct > 0.99 * np.sum(mags**2)

    def test_constant_field(self):
        x = np.full((16, 16), 3.7)
        c, plan = forward(x)
        np.testing.assert_allclose(inverse(c, plan), x, atol=1e-10)
        # details vanish for a constant input (up to round-off)
        lowx, lowy = plan.low_lengths[-1]
        detail_energy = np.sum(c**2) - np.sum(c[: (lowx + 1) // 2, : (lowy + 1) // 2] ** 2)


@settings(max_examples=30, deadline=None)
@given(
    st.tuples(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=2, max_value=40),
    ),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_dwt_round_trip_property(shape, seed):
    x = np.random.default_rng(seed).standard_normal(shape)
    c, plan = forward(x)
    np.testing.assert_allclose(inverse(c, plan), x, atol=1e-8)
