"""Property-based round-trip sweep across every codec.

Hypothesis drives random shapes (1-D to 3-D), dtypes, data characters,
and tolerances through SPERR and the four baseline reimplementations,
asserting the three contracts the paper's pipeline rests on:

* **error bound** — PWE-mode codecs reconstruct within the requested
  point-wise tolerance, whatever the input looks like;
* **container identity** — parsing a container and rebuilding it from
  its parts reproduces the payload byte for byte;
* **truncation** — a payload cut at any point either raises a
  :class:`~repro.errors.ReproError` (plain decode *and* salvage, when
  the framing itself is gone) or salvages to a correctly shaped
  :class:`~repro.core.container.DecodeResult` — never an unchecked
  exception, never a wrong-shaped array.

The sweep is budgeted to stay well under a minute: arrays are capped at
a few hundred points and example counts are modest; the seeds Hypothesis
prints on failure reproduce any case exactly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.compressors import ALL_COMPRESSORS
from repro.compressors.base import PsnrMode
from repro.core import PweMode, compress, decompress
from repro.core.container import DecodeResult, build_container, parse_container
from repro.errors import ReproError

#: Per-point tolerance slack: float64 accumulation in the inverse
#: transform can graze the bound by a few ulps.
_SLACK = 1.0 + 1e-9

_PWE_CODECS = ("sperr", "sz-like", "zfp-like", "mgard-like", "szx-like")


@st.composite
def arrays(draw):
    """A small random array: 1-3 dims, mixed dtype and data character."""
    ndim = draw(st.integers(1, 3))
    shape = tuple(
        draw(st.lists(st.integers(1, 10), min_size=ndim, max_size=ndim))
    )
    if math.prod(shape) > 400:
        shape = tuple(min(s, 5) for s in shape)
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    kind = draw(st.sampled_from(["normal", "constant", "ramp", "spiky"]))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    if kind == "constant":
        data = np.full(shape, float(rng.normal()))
    elif kind == "ramp":
        data = np.arange(math.prod(shape), dtype=np.float64).reshape(shape)
    elif kind == "spiky":
        data = rng.normal(size=shape)
        flat = data.reshape(-1)
        n_spikes = max(1, flat.size // 10)
        flat[rng.integers(0, flat.size, size=n_spikes)] *= 100.0
    else:
        data = rng.normal(size=shape)
    return np.ascontiguousarray(data.astype(dtype))


tolerances = st.sampled_from([1e-1, 1e-2, 1e-3])


@pytest.mark.parametrize("name", _PWE_CODECS)
@settings(max_examples=25, deadline=None)
@given(data=arrays(), tol=tolerances)
def test_pwe_bound_holds(name, data, tol):
    """Every PWE-mode codec honors the point-wise bound on any input."""
    comp = ALL_COMPRESSORS[name]()
    out = comp.decompress(comp.compress(data, PweMode(tol)))
    assert out.shape == data.shape
    worst = float(np.max(np.abs(out - np.asarray(data, dtype=np.float64))))
    assert worst <= tol * _SLACK, f"{name}: max err {worst} > tolerance {tol}"


@settings(max_examples=25, deadline=None)
@given(data=arrays(), psnr=st.sampled_from([40.0, 60.0]))
def test_psnr_mode_roundtrip(data, psnr):
    """The PSNR-bounded baseline reconstructs shape-true, finite output."""
    comp = ALL_COMPRESSORS["tthresh-like"]()
    out = comp.decompress(comp.compress(data, PsnrMode(psnr)))
    assert out.shape == data.shape
    assert np.all(np.isfinite(out))


@settings(max_examples=30, deadline=None)
@given(data=arrays(), tol=tolerances)
def test_container_reparse_identity(data, tol):
    """parse -> build reproduces the container payload byte for byte."""
    payload = compress(data, PweMode(tol)).payload
    p = parse_container(payload)
    rebuilt = build_container(
        p.rank, p.dtype, p.mode_code, p.shape, p.chunks, p.streams,
        version=p.format_version,
    )
    assert rebuilt == payload


@settings(max_examples=30, deadline=None)
@given(data=arrays(), tol=tolerances, frac=st.floats(0.0, 1.0, exclude_max=True))
def test_truncation_contract(data, tol, frac):
    """A truncated container is rejected cleanly or salvaged shape-true."""
    payload = compress(data, PweMode(tol)).payload
    cut = payload[: int(frac * len(payload))]
    with pytest.raises(ReproError):
        decompress(cut)
    try:
        result = decompress(cut, on_error="salvage")
    except ReproError:
        return  # framing itself unreadable: a clean rejection is the contract
    assert isinstance(result, DecodeResult)
    assert result.data.shape == data.shape


# ---------------------------------------------------------------------------
# SZx-style fast tier + adaptive dispatch properties.


@st.composite
def masked_arrays(draw):
    """A small array with optional NaN/Inf holes punched into it."""
    data = np.array(draw(arrays()))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    n_bad = draw(st.integers(0, max(1, data.size // 4)))
    if n_bad and data.size > 1:
        flat = data.reshape(-1)
        idx = rng.choice(data.size, size=min(n_bad, data.size - 1), replace=False)
        fills = rng.choice([np.nan, np.inf, -np.inf], size=idx.size)
        flat[idx] = fills
    return data


def _ulp_edge_case() -> np.ndarray:
    """float32 ramp to ~383 with one Inf: a stray Inf used to disable
    the float32 ULP tightening, letting the cast on decode push the
    error just past the bound (found by Hypothesis)."""
    data = np.arange(384, dtype=np.float32).reshape(6, 8, 8)
    data.reshape(-1)[326] = np.inf
    return data


@settings(max_examples=25, deadline=None)
@given(data=masked_arrays(), tol=tolerances)
@example(data=_ulp_edge_case(), tol=1e-3).via('discovered failure')
def test_szx_mask_and_dtype_exact(data, tol):
    """szx-like preserves dtype and reproduces NaN/Inf holes exactly."""
    comp = ALL_COMPRESSORS["szx-like"]()
    out = comp.decompress(comp.compress(data, PweMode(tol)))
    assert out.dtype == data.dtype
    assert out.shape == data.shape
    bad = ~np.isfinite(data)
    # Non-finite samples come back bit-true (NaN as NaN, signed Inf as is).
    np.testing.assert_array_equal(bad, ~np.isfinite(out))
    np.testing.assert_array_equal(data[bad], out[bad])
    if bad.all():
        return
    worst = float(
        np.max(
            np.abs(
                out[~bad].astype(np.float64) - data[~bad].astype(np.float64)
            )
        )
    )
    assert worst <= tol * _SLACK


@settings(max_examples=25, deadline=None)
@given(data=arrays(), tol=tolerances, frac=st.floats(0.0, 1.0, exclude_max=True))
def test_szx_frame_truncation_raises(data, tol, frac):
    """A truncated szx-like frame always raises a library error."""
    comp = ALL_COMPRESSORS["szx-like"]()
    payload = comp.compress(data, PweMode(tol))
    cut = payload[: int(frac * len(payload))]
    with pytest.raises(ReproError):
        comp.decompress(cut)


@pytest.mark.parametrize("codec", ["quality", "fast", "adaptive"])
@settings(max_examples=15, deadline=None)
@given(data=arrays(), tol=tolerances)
def test_codec_policies_hold_pwe_bound(codec, data, tol):
    """Every codec= policy reconstructs within the point-wise bound."""
    payload = compress(data, PweMode(tol), codec=codec).payload
    out = decompress(payload)
    assert out.shape == data.shape
    assert out.dtype == data.dtype
    worst = float(
        np.max(
            np.abs(
                np.asarray(out, dtype=np.float64)
                - np.asarray(data, dtype=np.float64)
            )
        )
    )
    assert worst <= tol * _SLACK


@settings(max_examples=20, deadline=None)
@given(data=arrays(), tol=tolerances)
def test_fast_container_reparse_identity(data, tol):
    """v4 containers rebuild byte-identically, codec tags included."""
    payload = compress(data, PweMode(tol), codec="fast").payload
    p = parse_container(payload)
    rebuilt = build_container(
        p.rank, p.dtype, p.mode_code, p.shape, p.chunks, p.streams,
        version=p.format_version, codec_tags=p.codec_tags,
    )
    assert rebuilt == payload


@settings(max_examples=20, deadline=None)
@given(data=arrays(), tol=tolerances, frac=st.floats(0.0, 1.0, exclude_max=True))
def test_fast_truncation_contract(data, tol, frac):
    """Truncated mixed-codec containers reject cleanly or salvage."""
    payload = compress(data, PweMode(tol), codec="fast").payload
    cut = payload[: int(frac * len(payload))]
    with pytest.raises(ReproError):
        decompress(cut)
    try:
        result = decompress(cut, on_error="salvage")
    except ReproError:
        return
    assert isinstance(result, DecodeResult)
    assert result.data.shape == data.shape
