"""The chunk-parallel adapter for baseline compressors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import (
    ChunkedCompressor,
    MgardLikeCompressor,
    PsnrMode,
    SzLikeCompressor,
    TthreshLikeCompressor,
    ZfpLikeCompressor,
)
from repro.core.modes import PweMode, SizeMode
from repro.errors import (
    IntegrityError,
    InvalidArgumentError,
    StreamFormatError,
    UnsupportedModeError,
)
from repro.metrics import psnr


class TestChunkedCompressor:
    @pytest.mark.parametrize(
        "inner_cls", [SzLikeCompressor, ZfpLikeCompressor, MgardLikeCompressor]
    )
    def test_error_bound_preserved(self, inner_cls, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**14
        c = ChunkedCompressor(inner_cls(), chunk_shape=10)
        recon = c.decompress(c.compress(smooth_field, PweMode(t)))
        assert np.abs(recon - smooth_field).max() <= t

    def test_threaded_matches_serial(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**12
        serial = ChunkedCompressor(SzLikeCompressor(), 10)
        threaded = ChunkedCompressor(SzLikeCompressor(), 10, executor="thread", workers=4)
        assert serial.compress(smooth_field, PweMode(t)) == threaded.compress(
            smooth_field, PweMode(t)
        )

    def test_psnr_inner(self, smooth_field):
        c = ChunkedCompressor(TthreshLikeCompressor(), 12)
        recon = c.decompress(c.compress(smooth_field, PsnrMode(60.0)))
        assert psnr(smooth_field, recon) >= 58.0

    def test_mode_checks_delegated(self, smooth_field):
        c = ChunkedCompressor(SzLikeCompressor(), 8)
        with pytest.raises(UnsupportedModeError):
            c.compress(smooth_field, SizeMode(bpp=2.0))

    def test_non_divisible_chunks(self, rng):
        data = rng.standard_normal((23, 17)).cumsum(axis=0)
        t = (data.max() - data.min()) / 2**10
        c = ChunkedCompressor(ZfpLikeCompressor(), (8, 8))
        recon = c.decompress(c.compress(data, PweMode(t)))
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= t

    def test_nesting_rejected(self):
        inner = ChunkedCompressor(SzLikeCompressor(), 8)
        with pytest.raises(InvalidArgumentError):
            ChunkedCompressor(inner, 8)

    def test_name_reflects_wrapping(self):
        c = ChunkedCompressor(ZfpLikeCompressor(), 8)
        assert c.name == "zfp-like+chunks"

    def test_corrupt_payload_rejected(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**10
        c = ChunkedCompressor(SzLikeCompressor(), 10)
        payload = c.compress(smooth_field, PweMode(t))
        with pytest.raises(StreamFormatError):
            c.decompress(b"XXXX" + payload[4:])
        with pytest.raises((StreamFormatError, Exception)):
            c.decompress(payload[: len(payload) // 3])


class TestChunkedIntegrity:
    @pytest.fixture()
    def chunked(self):
        return ChunkedCompressor(ZfpLikeCompressor(), 10)

    @pytest.fixture()
    def payload(self, chunked, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**12
        return chunked.compress(smooth_field, PweMode(t))

    def test_tile_bit_flip_raises_integrity_error(self, chunked, payload):
        bad = bytearray(payload)
        bad[-10] ^= 0x01  # inside the last tile's stream
        with pytest.raises(IntegrityError, match="CRC mismatch"):
            chunked.decompress(bytes(bad))

    def test_header_bit_flip_raises(self, chunked, payload):
        bad = bytearray(payload)
        bad[9] ^= 0x01  # inside the CRC-covered header (shape field)
        with pytest.raises(StreamFormatError):
            chunked.decompress(bytes(bad))

    def test_salvage_fills_damaged_tile(self, chunked, payload, smooth_field):
        clean = chunked.decompress(payload)
        bad = bytearray(payload)
        bad[-10] ^= 0x01
        result = chunked.decompress(bytes(bad), on_error="salvage")
        report = result.report
        assert len(report.failed_chunks) == 1
        assert report.crc_mismatches == report.failed_chunks
        nan_mask = np.isnan(result.data)
        assert nan_mask.any()
        assert np.array_equal(result.data[~nan_mask], clean[~nan_mask])

    def test_salvage_clean_payload(self, chunked, payload):
        result = chunked.decompress(payload, on_error="salvage")
        assert result.report.ok
        assert np.asarray(result).shape == result.data.shape

    def test_legacy_v1_framing_still_decodes(self, chunked, smooth_field):
        """Hand-built CHNK (pre-CRC) payloads must keep parsing."""
        import struct

        t = (smooth_field.max() - smooth_field.min()) / 2**12
        v2 = chunked.compress(smooth_field, PweMode(t))
        rank, shape, chunks, streams, _crcs, _dtype, _mask, _mcrc = chunked._parse(v2)
        head = bytearray()
        head += b"CHNK"
        head += struct.pack("<B", rank)
        head += struct.pack(f"<{rank}Q", *shape)
        head += struct.pack("<I", len(chunks))
        for chunk in chunks:
            for a, b in chunk.bounds:
                head += struct.pack("<QQ", a, b)
        for s in streams:
            head += struct.pack("<Q", len(s))
        v1 = bytes(head) + b"".join(streams)
        assert np.array_equal(chunked.decompress(v1), chunked.decompress(v2))

    def test_trailing_garbage_rejected(self, chunked, payload):
        with pytest.raises(StreamFormatError, match="trailing"):
            chunked.decompress(payload + b"\x00" * 7)
