"""The chunk-parallel adapter for baseline compressors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import (
    ChunkedCompressor,
    MgardLikeCompressor,
    PsnrMode,
    SzLikeCompressor,
    TthreshLikeCompressor,
    ZfpLikeCompressor,
)
from repro.core.modes import PweMode, SizeMode
from repro.errors import InvalidArgumentError, StreamFormatError, UnsupportedModeError
from repro.metrics import psnr


class TestChunkedCompressor:
    @pytest.mark.parametrize(
        "inner_cls", [SzLikeCompressor, ZfpLikeCompressor, MgardLikeCompressor]
    )
    def test_error_bound_preserved(self, inner_cls, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**14
        c = ChunkedCompressor(inner_cls(), chunk_shape=10)
        recon = c.decompress(c.compress(smooth_field, PweMode(t)))
        assert np.abs(recon - smooth_field).max() <= t

    def test_threaded_matches_serial(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**12
        serial = ChunkedCompressor(SzLikeCompressor(), 10)
        threaded = ChunkedCompressor(SzLikeCompressor(), 10, executor="thread", workers=4)
        assert serial.compress(smooth_field, PweMode(t)) == threaded.compress(
            smooth_field, PweMode(t)
        )

    def test_psnr_inner(self, smooth_field):
        c = ChunkedCompressor(TthreshLikeCompressor(), 12)
        recon = c.decompress(c.compress(smooth_field, PsnrMode(60.0)))
        assert psnr(smooth_field, recon) >= 58.0

    def test_mode_checks_delegated(self, smooth_field):
        c = ChunkedCompressor(SzLikeCompressor(), 8)
        with pytest.raises(UnsupportedModeError):
            c.compress(smooth_field, SizeMode(bpp=2.0))

    def test_non_divisible_chunks(self, rng):
        data = rng.standard_normal((23, 17)).cumsum(axis=0)
        t = (data.max() - data.min()) / 2**10
        c = ChunkedCompressor(ZfpLikeCompressor(), (8, 8))
        recon = c.decompress(c.compress(data, PweMode(t)))
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= t

    def test_nesting_rejected(self):
        inner = ChunkedCompressor(SzLikeCompressor(), 8)
        with pytest.raises(InvalidArgumentError):
            ChunkedCompressor(inner, 8)

    def test_name_reflects_wrapping(self):
        c = ChunkedCompressor(ZfpLikeCompressor(), 8)
        assert c.name == "zfp-like+chunks"

    def test_corrupt_payload_rejected(self, smooth_field):
        t = (smooth_field.max() - smooth_field.min()) / 2**10
        c = ChunkedCompressor(SzLikeCompressor(), 10)
        payload = c.compress(smooth_field, PweMode(t))
        with pytest.raises(StreamFormatError):
            c.decompress(b"XXXX" + payload[4:])
        with pytest.raises((StreamFormatError, Exception)):
            c.decompress(payload[: len(payload) // 3])
