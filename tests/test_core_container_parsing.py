"""Container framing primitives: parse/build round trips."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.chunking import Chunk
from repro.core.container import ParsedContainer, build_container, parse_container
from repro.core.modes import PweMode
from repro.datasets import spectral_field
from repro.errors import StreamFormatError


@pytest.fixture(scope="module")
def payload():
    data = spectral_field((14, 10), slope=2.0, seed=21)
    t = repro.tolerance_from_idx(data, 10)
    return repro.compress(data, PweMode(t), chunk_shape=7).payload


class TestParseContainer:
    def test_structural_fields(self, payload):
        parsed = parse_container(payload)
        assert parsed.rank == 2
        assert parsed.shape == (14, 10)
        assert parsed.dtype == np.float64
        assert parsed.mode_code == 0
        assert len(parsed.chunks) == len(parsed.streams) == 4

    def test_chunks_tile_shape(self, payload):
        parsed = parse_container(payload)
        covered = np.zeros(parsed.shape, dtype=int)
        for c in parsed.chunks:
            covered[c.slices()] += 1
        assert np.all(covered == 1)

    def test_rebuild_is_byte_identical(self, payload):
        parsed = parse_container(payload)
        rebuilt = build_container(
            parsed.rank,
            parsed.dtype,
            parsed.mode_code,
            parsed.shape,
            parsed.chunks,
            parsed.streams,
        )
        assert rebuilt == payload

    def test_rebuild_with_swapped_streams_decodes(self, payload):
        """The framing is position-based: replacing a chunk stream with a
        recompressed equivalent still produces a valid container."""
        parsed = parse_container(payload)
        rebuilt = build_container(
            parsed.rank, parsed.dtype, parsed.mode_code, parsed.shape,
            list(parsed.chunks), list(parsed.streams),
        )
        out = repro.decompress(rebuilt)
        assert out.shape == parsed.shape

    def test_bad_magic(self):
        with pytest.raises(StreamFormatError):
            parse_container(b"WRONGMAGIC" + b"\x00" * 40)

    def test_truncated_stream_table(self, payload):
        with pytest.raises(StreamFormatError):
            parse_container(payload[:40])

    def test_parsed_container_is_plain_data(self, payload):
        parsed = parse_container(payload)
        assert isinstance(parsed, ParsedContainer)
        assert all(isinstance(c, Chunk) for c in parsed.chunks)
        assert all(isinstance(s, bytes) for s in parsed.streams)
