"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def smooth_field(rng: np.random.Generator) -> np.ndarray:
    """A small smooth 3-D field (fast to compress, realistic spectrum)."""
    from repro.datasets import spectral_field

    return spectral_field((24, 24, 24), slope=3.0, seed=rng)


@pytest.fixture
def rough_field(rng: np.random.Generator) -> np.ndarray:
    """A small rough (nearly white) 3-D field."""
    from repro.datasets import spectral_field

    return spectral_field((20, 20, 20), slope=0.5, seed=rng)
