"""Tests for :class:`repro.compressors.MaskedCompressor`.

The wrapper gives every baseline codec the same NaN/Inf and dtype
robustness the native pipeline has, without touching the inner stream
format: finite float64 inputs pass through byte-identically, everything
else rides in an ``MSKW`` frame around the untouched inner payload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import ALL_COMPRESSORS, MaskedCompressor
from repro.compressors.szlike import SzLikeCompressor
from repro.compressors.zfplike import ZfpLikeCompressor
from repro.core.modes import PweMode
from repro.errors import IntegrityError, InvalidArgumentError, ReproError

TOL = 1e-3


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(21)
    return rng.normal(size=(20, 20)).cumsum(axis=0)


@pytest.fixture(scope="module")
def masked(field):
    data = field.copy()
    data[:5, :5] = np.nan
    data[0, -1] = np.inf
    data[-1, 0] = -np.inf
    return data


class TestPassthrough:
    def test_finite_float64_is_byte_identical(self, field):
        inner = SzLikeCompressor()
        wrapped = MaskedCompressor(SzLikeCompressor())
        mode = PweMode(TOL)
        assert wrapped.compress(field, mode) == inner.compress(field, mode)

    def test_decompress_falls_back_to_inner_payload(self, field):
        inner = SzLikeCompressor()
        wrapped = MaskedCompressor(SzLikeCompressor())
        payload = inner.compress(field, PweMode(TOL))
        out = wrapped.decompress(payload)
        np.testing.assert_array_equal(out, inner.decompress(payload))


class TestMaskedRoundtrip:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_nan_positions_and_dtype(self, masked, dtype):
        data = masked.astype(dtype)
        codec = MaskedCompressor(SzLikeCompressor())
        out = codec.decompress(codec.compress(data, PweMode(TOL)))
        assert out.dtype == data.dtype
        assert np.array_equal(np.isnan(out), np.isnan(data))
        assert np.array_equal(np.isposinf(out), np.isposinf(data))
        assert np.array_equal(np.isneginf(out), np.isneginf(data))
        valid = np.isfinite(data)
        assert np.abs(out[valid] - data[valid]).max() <= TOL * (1 + 1e-9)

    def test_float32_finite_gets_framed(self, field):
        codec = MaskedCompressor(SzLikeCompressor())
        payload = codec.compress(field.astype(np.float32), PweMode(TOL))
        assert payload[:4] == b"MSKW"
        out = codec.decompress(payload)
        assert out.dtype == np.float32

    def test_degradation_notes_surface(self, masked):
        codec = MaskedCompressor(SzLikeCompressor())
        codec.compress(masked, PweMode(TOL))
        assert any(n.kind == "masked_input" for n in codec.last_notes)


class TestFraming:
    def test_header_crc_guards_fields(self, masked):
        codec = MaskedCompressor(SzLikeCompressor())
        payload = bytearray(codec.compress(masked, PweMode(TOL)))
        payload[10] ^= 0xFF  # inside the CRC-protected header
        with pytest.raises(ReproError):
            codec.decompress(bytes(payload))

    def test_mask_blob_crc_checked(self, masked):
        codec = MaskedCompressor(SzLikeCompressor())
        payload = codec.compress(masked, PweMode(TOL))
        # Damage a byte inside the mask blob (after the fixed header).
        buf = bytearray(payload)
        buf[30] ^= 0xFF
        with pytest.raises((IntegrityError, ReproError)):
            codec.decompress(bytes(buf))

    def test_truncation_raises_repro_error(self, masked):
        codec = MaskedCompressor(SzLikeCompressor())
        payload = codec.compress(masked, PweMode(TOL))
        for cut in (3, 8, 20, len(payload) - 5):
            with pytest.raises(ReproError):
                codec.decompress(payload[:cut])

    def test_nesting_refused(self):
        with pytest.raises(InvalidArgumentError):
            MaskedCompressor(MaskedCompressor(SzLikeCompressor()))

    def test_name_reflects_inner(self):
        assert MaskedCompressor(ZfpLikeCompressor()).name == "zfp-like+mask"


class TestAllBaselines:
    @pytest.mark.parametrize(
        "key", [k for k in sorted(ALL_COMPRESSORS) if k != "sperr"]
    )
    def test_every_baseline_wraps(self, masked, key):
        codec = MaskedCompressor(ALL_COMPRESSORS[key]())
        mode = (
            PweMode(TOL)
            if key != "tthresh-like"
            else __import__(
                "repro.compressors.base", fromlist=["PsnrMode"]
            ).PsnrMode(60.0)
        )
        out = codec.decompress(codec.compress(masked, mode))
        assert out.dtype == masked.dtype
        assert np.array_equal(np.isnan(out), np.isnan(masked))
