"""Service under concurrency: coalescing, backpressure, tenant isolation.

The behavioural contracts the service tier exists for, pinned with 16+
concurrent clients against an in-process server:

* a burst of window reads touching the same chunks decodes each chunk
  **once** (verified through the :mod:`repro.obs` counters the server
  emits — the batch overlay's decode/coalesce split must reconcile with
  the store's chunk geometry via ``chunks_for_window``);
* every concurrent response is byte-identical to a direct
  ``read_window`` on the same store;
* admission control **rejects** excess load with structured
  backpressure errors instead of queueing it, and the server stays
  healthy afterwards;
* one tenant flooding the cache cannot evict another tenant's
  within-quota working set (the end-to-end version of the
  ``TenantCacheBudget`` unit tests).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.core.modes import PweMode
from repro.service import (
    BackpressureError,
    ServiceClient,
    ServiceConfig,
    serve_in_thread,
)
from repro.store import open_store, write_store

PWE = 1e-3
N_CLIENTS = 16
CHUNK_BYTES = 16 * 16 * 16 * 8  # one decoded chunk of the test store


def _field(shape=(32, 32, 32), seed=3):
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 2.0 * np.pi, shape[0])
    base = np.add.outer(np.sin(x), np.cos(x))
    for _ in range(len(shape) - 2):
        base = np.multiply.outer(base, np.cos(x))
    return base + 0.05 * rng.standard_normal(shape)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("service-conc") / "store.rps"
    write_store(path, _field(), PweMode(PWE), chunk_shape=16)
    return path


def _burst(n, fn):
    """Run ``fn(i)`` on ``n`` threads released together; returns results.

    Exceptions propagate: each slot holds either a result or the raised
    exception, and the caller decides which are acceptable.
    """
    barrier = threading.Barrier(n)
    results = [None] * n

    def runner(i):
        barrier.wait()
        try:
            results[i] = ("ok", fn(i))
        except Exception as exc:  # noqa: BLE001 - collected for the caller
            results[i] = ("error", exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120.0)
    assert all(r is not None for r in results), "a client thread hung"
    return results


class TestCoalescing:
    def test_same_window_burst_decodes_each_chunk_once(self, store_path):
        """16 clients, same 8-chunk window, one decode per chunk."""
        config = ServiceConfig(
            batch_hold_s=0.25,  # long hold: the whole burst lands in one batch
            max_batch=64,
            max_inflight_per_tenant=N_CLIENTS,
            max_pending=2 * N_CLIENTS,
        )
        window = (slice(0, 32), slice(0, 32), slice(0, 32))
        direct = open_store(store_path, cache_bytes=0)
        n_chunks = len(direct.chunks_for_window(window))
        assert n_chunks == 8
        want = direct.read_window(window)

        with serve_in_thread(store_path, config=config) as handle:
            with obs.trace("service-burst") as tracer:
                def one_read(i):
                    with ServiceClient(handle.host, handle.port) as c:
                        return c.read_window(window)

                results = _burst(N_CLIENTS, one_read)
            report = tracer.report()
            with ServiceClient(handle.host, handle.port) as probe:
                counters = probe.stats()["counters"]

        for status, value in results:
            assert status == "ok", f"read failed: {value}"
            assert value.tobytes() == want.tobytes()

        # The whole burst coalesced into one batch: each chunk decoded
        # exactly once, every other touch was a coalesced overlay hit.
        assert report.counters["service.chunk.decodes"] == n_chunks
        assert counters["chunk_decodes"] == n_chunks
        assert (
            report.counters["service.chunk.coalesced"]
            == (N_CLIENTS - 1) * n_chunks
        )
        assert counters["batches"] == 1
        assert report.counters["service.requests.read_window"] == N_CLIENTS

    def test_mixed_windows_never_decode_more_than_distinct_chunks(
        self, store_path
    ):
        """Overlapping different windows: decodes <= union of chunks."""
        config = ServiceConfig(
            batch_hold_s=0.25,
            max_batch=64,
            max_inflight_per_tenant=N_CLIENTS,
            max_pending=2 * N_CLIENTS,
        )
        direct = open_store(store_path, cache_bytes=0)
        windows = [
            (slice(0, 16), slice(0, 32), slice(0, 32)),
            (slice(8, 24), slice(8, 24), slice(8, 24)),
            (slice(16, 32), slice(0, 16), slice(0, 16)),
            (slice(0, 32), slice(16, 32), slice(16, 32)),
        ]
        union = set()
        for w in windows:
            union.update(direct.chunks_for_window(w))
        expected = [direct.read_window(w).tobytes() for w in windows]

        with serve_in_thread(store_path, config=config) as handle:
            def one_read(i):
                idx = i % len(windows)
                with ServiceClient(handle.host, handle.port) as c:
                    return idx, c.read_window(windows[idx])

            results = _burst(N_CLIENTS, one_read)
            with ServiceClient(handle.host, handle.port) as probe:
                counters = probe.stats()["counters"]

        for status, value in results:
            assert status == "ok", f"read failed: {value}"
            idx, got = value
            assert got.tobytes() == expected[idx]
        # Coalescing + caching bound the decode work by the chunk union,
        # not by the request count (16 requests x up-to-8 chunks each).
        assert counters["chunk_decodes"] <= len(union)
        assert counters["coalesced_chunk_hits"] > 0


class TestBackpressure:
    def test_excess_load_is_rejected_not_queued(self, store_path):
        config = ServiceConfig(
            max_inflight_per_tenant=1,
            max_pending=2,
            workers=1,
            batch_hold_s=0.1,  # slow drain: the caps must actually bind
            retry_after_ms=25,
        )
        window = (slice(0, 32), slice(0, 32), slice(0, 32))
        with serve_in_thread(store_path, config=config) as handle:
            def one_read(i):
                with ServiceClient(
                    handle.host, handle.port, tenant="flood"
                ) as c:
                    return c.read_window(window)

            results = _burst(N_CLIENTS, one_read)
            with ServiceClient(handle.host, handle.port) as probe:
                assert probe.ping()  # no meltdown
                counters = probe.stats()["counters"]

        ok = [v for s, v in results if s == "ok"]
        errors = [v for s, v in results if s == "error"]
        assert ok, "the admitted requests must still succeed"
        assert errors, "a 16-deep same-tenant burst must trip the caps"
        for exc in errors:
            assert isinstance(exc, BackpressureError)
            assert exc.code == "backpressure"
            assert exc.retry_after_ms == 25
        assert counters["backpressure_rejects"] == len(errors)
        # Rejected requests never entered the data plane.
        assert counters["batched_reads"] == len(ok)

    def test_control_plane_bypasses_admission(self, store_path):
        config = ServiceConfig(
            max_inflight_per_tenant=1, max_pending=1, workers=1,
            batch_hold_s=0.2,
        )
        window = (slice(0, 32), slice(0, 32), slice(0, 32))
        with serve_in_thread(store_path, config=config) as handle:
            def one(i):
                with ServiceClient(handle.host, handle.port) as c:
                    if i % 2:
                        return ("ping", c.ping())
                    try:
                        return ("read", c.read_window(window).shape)
                    except BackpressureError:
                        return ("read", "rejected")

            results = _burst(N_CLIENTS, one)
        # Every ping answered even while reads were being shed.
        for status, value in results:
            assert status == "ok"
            op, out = value
            if op == "ping":
                assert out is True

    def test_backpressure_recovers_after_retry(self, store_path):
        config = ServiceConfig(
            max_inflight_per_tenant=2, max_pending=4, workers=1,
            batch_hold_s=0.05, retry_after_ms=20,
        )
        window = (slice(0, 16), slice(0, 16), slice(0, 16))
        with serve_in_thread(store_path, config=config) as handle:
            import time

            def one_read(i):
                with ServiceClient(
                    handle.host, handle.port, tenant="retry"
                ) as c:
                    for _ in range(50):
                        try:
                            return c.read_window(window)
                        except BackpressureError as exc:
                            time.sleep(exc.retry_after_ms / 1e3)
                    raise AssertionError("starved despite retries")

            results = _burst(N_CLIENTS, one_read)
        direct = open_store(store_path, cache_bytes=0)
        want = direct.read_window(window).tobytes()
        for status, value in results:
            assert status == "ok", f"retry loop failed: {value}"
            assert value.tobytes() == want


class TestTenantIsolation:
    def test_flooding_tenant_cannot_evict_anothers_hot_set(self, store_path):
        """Tenant A's within-quota chunks survive tenant B's scans."""
        quota = 8 * CHUNK_BYTES  # each tenant may hold one full frame
        config = ServiceConfig(
            cache_bytes=2 * quota,
            tenant_quota_bytes=quota,
            batch_hold_s=0.0,
        )
        window = (slice(0, 32), slice(0, 32), slice(0, 32))
        with serve_in_thread(store_path, config=config) as handle:
            with ServiceClient(handle.host, handle.port, tenant="a") as a, \
                    ServiceClient(handle.host, handle.port, tenant="b") as b:
                a.read_window(window)  # A warms its full working set
                for _ in range(6):  # B floods well past its own quota
                    b.read_window(window)
                    b.read_window(window, level=1)
                after_flood = a.stats()
                a.read_window(window)  # A again: must be all cache hits
                final = a.stats()["counters"]["chunk_decodes"]
                tenants = after_flood["cache"]["tenants"]

        assert tenants["a"]["nbytes"] == quota  # A's set still resident
        assert tenants["a"]["evictions"] == 0
        assert tenants["b"]["evictions"] > 0  # B evicted only itself
        # A's re-read triggered no decode at all: its hot set survived.
        assert final == after_flood["counters"]["chunk_decodes"]

    def test_concurrent_tenants_each_get_correct_bytes(self, store_path):
        config = ServiceConfig(
            tenant_quota_bytes=4 * CHUNK_BYTES,
            max_inflight_per_tenant=4,
            max_pending=64,
            batch_hold_s=0.02,
        )
        direct = open_store(store_path, cache_bytes=0)
        windows = [
            (slice(0, 16), slice(0, 16), slice(0, 16)),
            (slice(16, 32), slice(16, 32), slice(16, 32)),
            (slice(4, 20), slice(4, 20), slice(4, 20)),
            (slice(0, 32), 5, slice(0, 32)),
        ]
        expected = [direct.read_window(w).tobytes() for w in windows]

        with serve_in_thread(store_path, config=config) as handle:
            def one(i):
                idx = i % len(windows)
                with ServiceClient(
                    handle.host, handle.port, tenant=f"t{i % 4}"
                ) as c:
                    out = [
                        c.read_window(windows[idx]).tobytes()
                        for _ in range(3)
                    ]
                return idx, out

            results = _burst(N_CLIENTS, one)
        for status, value in results:
            assert status == "ok", f"tenant read failed: {value}"
            idx, outs = value
            for got in outs:
                assert got == expected[idx]
