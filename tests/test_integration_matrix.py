"""Integration matrix: the PWE guarantee across every configuration axis.

Each axis of the public API is exercised in combination — wavelet
choice, rank, chunking, executor, lossless method, q-factor — on small
inputs, asserting the one invariant that defines SPERR.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.modes import PweMode
from repro.datasets import spectral_field


def _field(rank: int) -> np.ndarray:
    shape = {1: (60,), 2: (18, 14), 3: (10, 12, 8)}[rank]
    return spectral_field(shape, slope=2.5, seed=rank)


@pytest.mark.parametrize("wavelet", ["cdf97", "cdf53", "haar"])
@pytest.mark.parametrize("rank", [1, 2, 3])
def test_wavelet_rank_matrix(wavelet, rank):
    data = _field(rank)
    t = repro.tolerance_from_idx(data, 13)
    res = repro.compress(data, PweMode(t), wavelet=wavelet)
    recon = repro.decompress(res.payload)
    assert np.abs(recon - data).max() <= t


@pytest.mark.parametrize("lossless_method", ["auto", "stored", "huffman", "ac"])
def test_lossless_method_matrix(lossless_method):
    data = _field(2)
    t = repro.tolerance_from_idx(data, 13)
    res = repro.compress(data, PweMode(t), lossless_method=lossless_method)
    recon = repro.decompress(res.payload)
    assert np.abs(recon - data).max() <= t


@pytest.mark.parametrize("executor,workers", [("serial", None), ("thread", 2), ("thread", 8)])
@pytest.mark.parametrize("chunk", [6, (9, 7)])
def test_chunk_executor_matrix(executor, workers, chunk):
    data = _field(2)
    t = repro.tolerance_from_idx(data, 13)
    res = repro.compress(
        data, PweMode(t), chunk_shape=chunk, executor=executor, workers=workers
    )
    recon = repro.decompress(res.payload, executor=executor, workers=workers)
    assert np.abs(recon - data).max() <= t


@pytest.mark.parametrize("q_factor", [1.0, 1.5, 2.5])
@pytest.mark.parametrize("levels", [None, 1])
def test_q_levels_matrix(q_factor, levels):
    data = _field(3)
    t = repro.tolerance_from_idx(data, 13)
    res = repro.compress(data, PweMode(t, q_factor=q_factor), levels=levels)
    recon = repro.decompress(res.payload)
    assert np.abs(recon - data).max() <= t


@pytest.mark.parametrize("idx", [2, 13, 26])
def test_tolerance_extremes(idx):
    data = _field(3)
    t = repro.tolerance_from_idx(data, idx)
    res = repro.compress(data, PweMode(t))
    recon = repro.decompress(res.payload)
    assert np.abs(recon - data).max() <= t
    # looser tolerance can never cost more bits
    if idx > 2:
        loose = repro.compress(data, PweMode(repro.tolerance_from_idx(data, 2)))
        assert loose.nbytes <= res.nbytes
