"""Synthetic data sets: determinism, statistical character, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    FIELDS,
    get_field,
    lighthouse,
    nyx_dark_matter_density,
    qmcpack_orbitals,
    radial_wavenumber,
    s3d_ch4,
    s3d_temperature,
    spectral_field,
)
from repro.errors import InvalidArgumentError


class TestSpectralField:
    def test_deterministic(self):
        a = spectral_field((16, 16), slope=3.0, seed=7)
        b = spectral_field((16, 16), slope=3.0, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_normalized(self):
        f = spectral_field((64, 64), slope=2.0, seed=0)
        assert abs(f.mean()) < 1e-10
        assert f.std() == pytest.approx(1.0)

    def test_slope_controls_smoothness(self):
        """Steeper spectrum => smaller nearest-neighbour differences."""
        rough = spectral_field((4096,), slope=0.5, seed=1)
        smooth = spectral_field((4096,), slope=4.0, seed=1)
        d_rough = np.abs(np.diff(rough)).mean()
        d_smooth = np.abs(np.diff(smooth)).mean()
        assert d_smooth < d_rough / 3

    def test_radial_wavenumber_shape(self):
        k = radial_wavenumber((8, 6))
        assert k.shape == (8, 6)
        assert k[0, 0] == 0.0

    def test_tiny_axis_rejected(self):
        with pytest.raises(InvalidArgumentError):
            spectral_field((1, 16), slope=2.0)


class TestFieldRegistry:
    @pytest.mark.parametrize("name", sorted(FIELDS))
    def test_every_field_generates(self, name):
        shape = (12, 12, 12) if name != "qmcpack_orbitals" else (8, 8, 6)
        data = get_field(name, shape=shape)
        assert data.ndim == 3
        assert np.all(np.isfinite(data))
        assert data.max() > data.min()  # non-constant

    @pytest.mark.parametrize("name", sorted(FIELDS))
    def test_determinism(self, name):
        shape = (8, 8, 8) if name != "qmcpack_orbitals" else (6, 6, 4)
        np.testing.assert_array_equal(
            get_field(name, shape=shape), get_field(name, shape=shape)
        )

    def test_seed_changes_field(self):
        a = get_field("miranda_pressure", shape=(8, 8, 8), seed=1)
        b = get_field("miranda_pressure", shape=(8, 8, 8), seed=2)
        assert not np.array_equal(a, b)

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidArgumentError):
            get_field("hurricane")

    def test_nyx_heavy_tailed(self):
        """Nyx DMD must be log-normal-ish: strongly right-skewed."""
        d = nyx_dark_matter_density((24, 24, 24))
        assert np.all(d > 0)
        assert d.max() / np.median(d) > 20

    def test_s3d_front_structure(self):
        """CH4 is consumed across the front: near-max on one side, near
        zero on the other."""
        f = s3d_ch4((24, 24, 24))
        left = f[:4].mean()
        right = f[-4:].mean()
        assert left > 10 * max(right, 1e-12)

    def test_s3d_temperature_range(self):
        t = s3d_temperature((16, 16, 16))
        assert 500 < t.min() < 1200
        assert 1800 < t.max() < 2600

    def test_qmcpack_orbital_stacking(self):
        v = qmcpack_orbitals((8, 8, 6), n_orbitals=3)
        assert v.shape == (8, 8, 18)
        with pytest.raises(InvalidArgumentError):
            qmcpack_orbitals((8, 8, 6), n_orbitals=0)


class TestLighthouse:
    def test_shape_and_range(self):
        img = lighthouse((64, 96))
        assert img.shape == (64, 96)
        assert img.min() >= 0.0 and img.max() <= 255.0

    def test_deterministic(self):
        np.testing.assert_array_equal(lighthouse((64, 64)), lighthouse((64, 64)))

    def test_has_high_contrast_edges(self):
        """Tower stripes and fence must produce strong gradients — the
        structure that generates outliers in Fig. 1."""
        img = lighthouse((128, 192))
        grad = np.abs(np.diff(img, axis=1)).max()
        assert grad > 100

    def test_too_small_rejected(self):
        with pytest.raises(InvalidArgumentError):
            lighthouse((16, 16))
