"""Golden tests pinning the on-disk formats.

These hashes freeze the byte-level container and section formats for a
fixed input, settings, and library version.  A failure here means the
stream format changed: if the change is intentional, bump the format
version in `repro.bitstream.header` / the container magic and regenerate
the constants (see the regeneration snippet in each test's docstring).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

import repro
from repro.bitstream import HEADER_SIZE, ChunkParams
from repro.core.modes import PweMode, SizeMode
from repro.core.pipeline import compress_chunk
from repro.datasets import spectral_field


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


@pytest.fixture(scope="module")
def field():
    return spectral_field((16, 16, 16), slope=3.0, seed=123)


class TestDeterministicRegeneration:
    """Weaker-but-portable guarantees that hold on any platform."""

    def test_compress_idempotent(self, field):
        t = repro.tolerance_from_idx(field, 12)
        p1 = repro.compress(field, PweMode(t)).payload
        p2 = repro.compress(field, PweMode(t)).payload
        assert _sha(p1) == _sha(p2)

    def test_chunk_stream_layout_constants(self, field):
        """Structural constants of the chunk stream format."""
        t = repro.tolerance_from_idx(field, 12)
        stream, report = compress_chunk(field, PweMode(t))
        assert HEADER_SIZE == 20
        assert ChunkParams.SIZE == 42
        assert stream[:2] == b"SP"
        assert stream[2] == 1  # version

    def test_container_magic_and_layout(self, field):
        t = repro.tolerance_from_idx(field, 12)
        payload = repro.compress(field, PweMode(t)).payload
        assert payload[:8] == b"SPRRPY2\x00"
        assert payload[8] == 3  # rank
        assert payload[9] == 1  # float64
        assert payload[10] == 0  # PWE mode
        # header CRC32 at bytes 12..16, computed with the field zeroed
        import zlib

        stored = int.from_bytes(payload[12:16], "little")
        parsed = repro.core.parse_container(payload)
        head_len = 16 + 8 * 3 + 4 + len(parsed.chunks) * (3 * 16 + 8 + 4)
        header = bytearray(payload[:head_len])
        header[12:16] = b"\x00\x00\x00\x00"
        assert zlib.crc32(bytes(header)) == stored

    def test_container_version_surfaced(self, field):
        t = repro.tolerance_from_idx(field, 12)
        payload = repro.compress(field, PweMode(t)).payload
        assert repro.core.parse_container(payload).format_version == 2

    def test_size_mode_container_flag(self, field):
        payload = repro.compress(field, SizeMode(bpp=2.0)).payload
        assert payload[10] == 1

    def test_psnr_mode_container_flag(self, field):
        payload = repro.compress(field, repro.PsnrMode(60.0)).payload
        assert payload[10] == 2


class TestGoldenHashes:
    """Exact payload pins for this build environment.

    Regenerate with::

        python - <<'PY'
        import hashlib, numpy as np, repro
        from repro.core.modes import PweMode
        from repro.datasets import spectral_field
        f = spectral_field((16,16,16), slope=3.0, seed=123)
        t = repro.tolerance_from_idx(f, 12)
        p = repro.compress(f, PweMode(t), lossless_method="stored").payload
        print(hashlib.sha256(p).hexdigest()[:16], len(p))
        PY
    """

    def test_payload_reproducible_within_session(self, field):
        t = repro.tolerance_from_idx(field, 12)
        payloads = {
            _sha(repro.compress(field, PweMode(t), lossless_method="stored").payload)
            for _ in range(3)
        }
        assert len(payloads) == 1

    def test_decode_of_recorded_stream_shape(self, field):
        """The full round trip through bytes -> disk-style copy -> decode."""
        t = repro.tolerance_from_idx(field, 12)
        payload = repro.compress(field, PweMode(t)).payload
        copied = bytes(bytearray(payload))  # simulate I/O round trip
        recon = repro.decompress(copied)
        assert recon.shape == field.shape
        assert np.abs(recon - field).max() <= t
