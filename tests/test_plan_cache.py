"""The plan cache: memoized per-shape codec state (hot-path acceleration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compress, decompress, PweMode
from repro.core.plans import (
    PlanCache,
    SPECK_GEOMETRIES,
    WAVELET_PLANS,
    cache_stats,
    clear_plan_caches,
    speck_geometry,
    wavelet_plan,
    zfp_scan_order,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Every test starts and ends with empty plan caches."""
    clear_plan_caches()
    yield
    clear_plan_caches()


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(maxsize=4, name="t")
        built = []

        def factory():
            built.append(1)
            return "plan"

        assert cache.get("k", factory) == "plan"
        assert cache.get("k", factory) == "plan"
        assert built == [1]
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2, name="t")
        cache.get("a", lambda: "A")
        cache.get("b", lambda: "B")
        cache.get("a", lambda: "A")  # refresh a: b is now least recent
        cache.get("c", lambda: "C")  # evicts b
        assert cache.stats()["evictions"] == 1
        cache.get("a", lambda: pytest.fail("a should still be cached"))
        rebuilt = []
        cache.get("b", lambda: rebuilt.append(1) or "B")
        assert rebuilt == [1]

    def test_clear_resets_counters(self):
        cache = PlanCache(maxsize=4, name="t")
        cache.get("k", lambda: 1)
        cache.get("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "size": 0, "maxsize": 4, "hits": 0, "misses": 0, "evictions": 0,
        }

    def test_rejects_invalid_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestSharedPlans:
    def test_wavelet_plan_identity(self):
        a = wavelet_plan((16, 16, 16))
        b = wavelet_plan((16, 16, 16))
        assert a is b
        assert wavelet_plan((16, 16)) is not a

    def test_wavelet_plan_key_includes_levels(self):
        assert wavelet_plan((32, 32), levels=1) is not wavelet_plan((32, 32), levels=2)

    def test_speck_geometry_identity(self):
        assert speck_geometry((8, 8, 8)) is speck_geometry((8, 8, 8))

    def test_zfp_scan_order_immutable(self):
        perm, inv = zfp_scan_order(3)
        assert zfp_scan_order(3)[0] is perm
        assert not perm.flags.writeable
        assert not inv.flags.writeable
        np.testing.assert_array_equal(np.argsort(perm), inv)

    def test_cache_stats_shape(self):
        wavelet_plan((16, 16))
        stats = cache_stats()
        assert set(stats) == {
            "wavelet_plans",
            "speck_geometries",
            "zfp_scan_orders",
            "huffman_tables",
        }
        assert stats["wavelet_plans"]["misses"] == 1


class TestCachedPipeline:
    def test_same_shaped_chunks_hit_cache(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(32, 32, 32))
        # The serial loop looks the plans up once per chunk; the batch
        # executor fetches them once per shape *group* (see below).
        compress(data, PweMode(1e-2), chunk_shape=16, executor="serial")
        stats = cache_stats()
        # 8 chunks of one shape: 1 miss, 7 hits per plan cache.
        assert stats["wavelet_plans"]["misses"] == 1
        assert stats["wavelet_plans"]["hits"] >= 7
        assert stats["speck_geometries"]["misses"] >= 1
        assert stats["speck_geometries"]["hits"] >= 7

    def test_batch_executor_fetches_plans_once_per_group(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(32, 32, 32))
        compress(data, PweMode(1e-2), chunk_shape=16, executor="batch")
        stats = cache_stats()
        assert stats["wavelet_plans"]["misses"] == 1
        assert stats["speck_geometries"]["misses"] >= 1

    def test_warm_cache_streams_bit_identical(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(24, 24, 24))
        mode = PweMode(1e-3)
        cold = compress(data, mode, chunk_shape=12).payload
        warm = compress(data, mode, chunk_shape=12).payload
        assert WAVELET_PLANS.stats()["hits"] > 0
        assert SPECK_GEOMETRIES.stats()["hits"] > 0
        assert warm == cold
        np.testing.assert_array_equal(decompress(warm), decompress(cold))

    def test_eviction_does_not_change_streams(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(16, 16))
        mode = PweMode(1e-3)
        baseline = compress(data, mode).payload
        # Force eviction churn by filling the small caches with other shapes.
        for n in range(8, 8 + SPECK_GEOMETRIES.maxsize + 2):
            speck_geometry((n, n))
            wavelet_plan((n, n))
        assert compress(data, mode).payload == baseline
