"""Lossless substrate: Huffman, RLE, LZ77, rANS, and the backend selector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lossless
from repro.errors import InvalidArgumentError, StreamFormatError
from repro.lossless import bitpack, huffman, lz77, rc, rle


class TestHuffman:
    def test_round_trip_bytes(self, rng):
        data = rng.integers(0, 256, size=5000).astype(np.uint8)
        # skew the distribution so Huffman actually compresses
        data[data < 128] = 7
        code = huffman.build_code(np.bincount(data, minlength=256))
        payload, nbits = huffman.encode(data, code)
        out = huffman.decode(payload, nbits, data.size, code)
        assert np.array_equal(out, data)
        assert nbits < 8 * data.size  # must beat raw storage on skewed data

    def test_single_symbol_alphabet(self):
        data = np.full(100, 42, dtype=np.uint8)
        code = huffman.build_code(np.bincount(data, minlength=256))
        payload, nbits = huffman.encode(data, code)
        assert nbits == 100  # one bit per symbol is the degenerate minimum
        out = huffman.decode(payload, nbits, 100, code)
        assert np.array_equal(out, data)

    def test_empty_input(self):
        code = huffman.build_code(np.zeros(256, dtype=np.int64))
        payload, nbits = huffman.encode(np.zeros(0, dtype=np.uint8), code)
        assert payload == b"" and nbits == 0
        assert huffman.decode(b"", 0, 0, code).size == 0

    def test_kraft_inequality_holds(self, rng):
        freqs = rng.integers(0, 1000, size=300)
        code = huffman.build_code(freqs)
        used = code.lengths[code.lengths > 0].astype(np.float64)
        assert np.sum(2.0**-used) <= 1.0 + 1e-12

    def test_code_lengths_ordered_by_frequency(self):
        freqs = np.array([1000, 100, 10, 1])
        code = huffman.build_code(freqs)
        lengths = code.lengths
        assert lengths[0] <= lengths[1] <= lengths[2]

    def test_symbol_without_code_rejected(self):
        code = huffman.build_code(np.array([5, 5, 0]))
        with pytest.raises(InvalidArgumentError):
            huffman.encode(np.array([2]), code)

    def test_codebook_serialization_round_trip(self, rng):
        freqs = rng.integers(0, 50, size=256)
        code = huffman.build_code(freqs)
        blob = huffman.serialize_code(code)
        restored, consumed = huffman.deserialize_code(blob + b"extra")
        assert consumed == len(blob)
        assert np.array_equal(restored.lengths, code.lengths)
        assert np.array_equal(restored.codes, code.codes)

    def test_truncated_codebook_rejected(self):
        with pytest.raises(StreamFormatError):
            huffman.deserialize_code(b"\x01")

    def test_decode_truncated_stream_rejected(self, rng):
        data = rng.integers(0, 4, size=64).astype(np.uint8)
        code = huffman.build_code(np.bincount(data, minlength=256))
        payload, nbits = huffman.encode(data, code)
        with pytest.raises(StreamFormatError):
            huffman.decode(payload, nbits, data.size + 10, code)

    def test_large_alphabet(self, rng):
        symbols = rng.integers(0, 60000, size=2000)
        freqs = np.bincount(symbols, minlength=65536)
        code = huffman.build_code(freqs)
        payload, nbits = huffman.encode(symbols, code)
        out = huffman.decode(payload, nbits, symbols.size, code)
        assert np.array_equal(out, symbols)


class TestRle:
    def test_round_trip_runs(self):
        data = b"\x00" * 1000 + b"\x01\x02\x03" + b"\xff" * 300
        assert rle.decode(rle.encode(data)) == data
        assert len(rle.encode(data)) < len(data)

    def test_empty(self):
        assert rle.decode(rle.encode(b"")) == b""

    def test_run_longer_than_255(self):
        data = b"a" * 1000
        assert rle.decode(rle.encode(data)) == data

    def test_incompressible_expands_but_round_trips(self, rng):
        data = bytes(rng.integers(0, 256, size=500).astype(np.uint8))
        assert rle.decode(rle.encode(data)) == data

    def test_corrupt_stream_rejected(self):
        with pytest.raises(StreamFormatError):
            rle.decode(b"\x01")
        with pytest.raises(StreamFormatError):
            rle.decode(rle.encode(b"abc")[:-1])


class TestLz77:
    def test_round_trip_repetitive(self):
        data = b"the quick brown fox " * 50
        enc = lz77.encode(data)
        assert lz77.decode(enc) == data
        assert len(enc) < len(data)

    def test_round_trip_random(self, rng):
        data = bytes(rng.integers(0, 256, size=2000).astype(np.uint8))
        assert lz77.decode(lz77.encode(data)) == data

    def test_empty(self):
        assert lz77.decode(lz77.encode(b"")) == b""

    def test_overlapping_match(self):
        data = b"abcabcabcabcabcabcabcabc"
        assert lz77.decode(lz77.encode(data)) == data

    def test_truncated_rejected(self):
        with pytest.raises(StreamFormatError):
            lz77.decode(b"\x00" * 8)


class TestBitpack:
    def test_pack_extract_round_trip(self, rng):
        widths = rng.integers(1, 26, size=500).astype(np.int64)
        values = rng.integers(0, 1 << 25, size=500).astype(np.uint64) & (
            (np.uint64(1) << widths.astype(np.uint64)) - np.uint64(1)
        )
        packed, nbits = bitpack.pack_msb(values, widths)
        assert nbits == int(widths.sum())
        assert len(packed) == (nbits + 7) >> 3
        windows = bitpack.byte_windows(packed)
        offsets = np.concatenate(([0], np.cumsum(widths)[:-1]))
        out = bitpack.extract_msb(windows, offsets, widths)
        np.testing.assert_array_equal(out, values)

    def test_pack_matches_manual_bitstring(self):
        values = np.array([0b101, 0b1, 0b11010], dtype=np.uint64)
        lengths = np.array([3, 1, 5], dtype=np.int64)
        packed, nbits = bitpack.pack_msb(values, lengths)
        assert nbits == 9
        assert packed == bytes([0b10111101, 0b00000000])

    def test_empty_pack(self):
        packed, nbits = bitpack.pack_msb(
            np.array([], dtype=np.uint64), np.array([], dtype=np.int64)
        )
        assert packed == b"" and nbits == 0

    def test_rejects_oversized_width(self):
        with pytest.raises(InvalidArgumentError):
            bitpack.pack_msb(
                np.array([1], dtype=np.uint64), np.array([33], dtype=np.int64)
            )


class TestRangeCoder:
    def test_round_trip_skewed(self, rng):
        data = np.minimum(rng.geometric(0.3, size=20000) - 1, 255)
        data = data.astype(np.uint8).tobytes()
        payload = rc.encode(data)
        assert rc.decode(payload) == data

    def test_round_trip_uniform(self, rng):
        data = bytes(rng.integers(0, 256, size=5000).astype(np.uint8))
        assert rc.decode(rc.encode(data)) == data

    def test_empty_and_single_byte(self):
        assert rc.decode(rc.encode(b"")) == b""
        assert rc.decode(rc.encode(b"a")) == b"a"
        assert rc.decode(rc.encode(b"a" * 10000)) == b"a" * 10000

    def test_encode_is_deterministic(self, rng):
        data = bytes(rng.integers(0, 16, size=4096).astype(np.uint8))
        assert rc.encode(data) == rc.encode(data)

    def test_budget_abort_returns_none(self, rng):
        data = bytes(rng.integers(0, 256, size=8192).astype(np.uint8))
        assert rc.encode(data, max_bytes=100) is None

    def test_near_entropy_on_skewed_data(self, rng):
        """The static coder must land close to the order-0 entropy bound."""
        data = np.minimum(rng.geometric(0.25, size=1 << 16) - 1, 255).astype(np.uint8)
        counts = np.bincount(data, minlength=256)
        p = counts[counts > 0] / data.size
        entropy_bytes = float(-(p * np.log2(p)).sum()) * data.size / 8
        payload = rc.encode(data.tobytes())
        overhead = 9 + 384 + 4 * 2 + 4  # header + freq table + states + count
        # 12-bit frequency quantization costs a few percent on a long
        # geometric tail; 5% headroom keeps the bound meaningful.
        assert len(payload) <= entropy_bytes * 1.05 + overhead + 64

    def test_truncated_rejected(self, rng):
        data = bytes(rng.integers(0, 8, size=4096).astype(np.uint8))
        payload = rc.encode(data)
        for cut in (0, 5, 9, 200, len(payload) - 1):
            with pytest.raises(StreamFormatError):
                rc.decode(payload[:cut])

    def test_bit_flip_detected_or_garbage_sized(self, rng):
        """Final-state and word-consumption checks make damage loud: a
        flipped byte either raises or still yields exactly n bytes."""
        data = bytes(rng.integers(0, 8, size=4096).astype(np.uint8))
        payload = bytearray(rc.encode(data))
        for pos in (10, 400, len(payload) // 2, len(payload) - 3):
            bad = bytearray(payload)
            bad[pos] ^= 0x40
            try:
                out = rc.decode(bytes(bad))
                assert len(out) == len(data)
            except StreamFormatError:
                pass


class TestBackend:
    @pytest.mark.parametrize(
        "method",
        ["stored", "rle", "huffman", "rle+huffman", "lz77", "ac", "rc", "auto"],
    )
    def test_round_trip_all_methods(self, method, rng):
        data = bytes(rng.integers(0, 8, size=3000).astype(np.uint8))
        assert lossless.decompress(lossless.compress(data, method=method)) == data

    def test_auto_never_worse_than_stored_plus_tag(self, rng):
        data = bytes(rng.integers(0, 256, size=4096).astype(np.uint8))
        assert len(lossless.compress(data, method="auto")) <= len(data) + 1

    def test_auto_compresses_structured_data(self):
        data = b"\x00" * 4000 + b"\x01" * 100
        assert len(lossless.compress(data, method="auto")) < len(data) // 10

    def test_empty_payload_rejected(self):
        with pytest.raises(StreamFormatError):
            lossless.decompress(b"")

    def test_unknown_method_rejected(self):
        with pytest.raises(InvalidArgumentError):
            lossless.compress(b"abc", method="zstd")

    def test_unknown_tag_rejected(self):
        with pytest.raises(StreamFormatError):
            lossless.decompress(bytes([200]) + b"xx")

    def test_empty_data_round_trips(self):
        for method in lossless.METHODS:
            assert lossless.decompress(lossless.compress(b"", method=method)) == b""


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=1500))
def test_backend_auto_round_trip_property(data):
    assert lossless.decompress(lossless.compress(data, method="auto")) == data


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=600))
def test_lz77_round_trip_property(data):
    assert lz77.decode(lz77.encode(data)) == data
